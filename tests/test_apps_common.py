"""Cross-application tests: every app must satisfy the framework contract."""

import pytest

from repro.apps.registry import (APP_NAMES, PAPER_PROBLEM_SIZES, app_class,
                                 build_app)
from repro.core.config import MachineConfig

#: tiny problem sizes so the whole matrix of checks stays fast
TINY = {
    "lu": dict(n=32, block=8),
    "fft": dict(n_points=256),
    "ocean": dict(n=16, n_vcycles=1),
    "barnes": dict(n_particles=64, n_steps=1),
    "fmm": dict(n_particles=64, levels=2, n_steps=1),
    "radix": dict(n_keys=512, radix=16, n_digits=2),
    "raytrace": dict(width=8, height=8, n_spheres=8),
    "volrend": dict(volume_side=8, width=8, height=8, block=2),
    "mp3d": dict(n_particles=64, n_steps=1),
}


def tiny_app(name, cluster=2, cache=4.0, n_processors=4, seed=12345):
    cfg = MachineConfig(n_processors=n_processors, cluster_size=cluster,
                        cache_kb_per_processor=cache)
    return build_app(name, cfg, seed=seed, **TINY[name])


class TestRegistry:
    def test_all_nine_apps_registered(self):
        assert len(APP_NAMES) == 9
        for name in APP_NAMES:
            assert app_class(name).name == name

    def test_unknown_app_helpful_error(self):
        with pytest.raises(KeyError, match="unknown application"):
            app_class("quicksort")

    def test_paper_sizes_cover_all_apps(self):
        assert set(PAPER_PROBLEM_SIZES) == set(APP_NAMES)

    def test_build_app_paper_scale_overridable(self):
        cfg = MachineConfig(n_processors=64)
        app = build_app("lu", cfg, paper_scale=True, n=64)
        assert app.n == 64
        assert app.block == 16  # from the paper preset


@pytest.mark.parametrize("name", APP_NAMES)
class TestContract:
    def test_runs_and_accounts_time(self, name):
        app = tiny_app(name)
        res = app.run()
        assert res.execution_time > 0
        for bd in res.per_processor:
            assert bd.total == res.execution_time
        assert res.misses.references > 0

    def test_deterministic_rerun(self, name):
        r1 = tiny_app(name).run()
        r2 = tiny_app(name).run()
        assert r1.execution_time == r2.execution_time
        assert r1.misses.references == r2.misses.references
        assert r1.misses.read_misses == r2.misses.read_misses

    def test_all_cluster_sizes_complete(self, name):
        for cluster in (1, 2, 4):
            app = tiny_app(name, cluster=cluster)
            res = app.run()
            assert res.execution_time > 0

    def test_infinite_cache_no_capacity_misses(self, name):
        from repro.core.metrics import MissCause
        app = tiny_app(name, cache=None)
        res = app.run()
        assert res.misses.by_cause[MissCause.CAPACITY] == 0

    def test_references_within_allocated_space(self, name):
        """Every emitted address must fall inside an allocated region."""
        from repro.sim.program import OP_READ, OP_WRITE
        app = tiny_app(name)
        app.ensure_setup()
        hi = app.space.bytes_allocated + app.space.page_size
        checked = 0
        for op, arg in app.program(0):
            if op in (OP_READ, OP_WRITE):
                assert 0 <= arg < hi, f"{name} address {arg:#x} out of space"
                checked += 1
            if checked > 3000:
                break
        assert checked > 0

    def test_memory_invariants_after_run(self, name):
        from repro.memory.coherence import CoherentMemorySystem
        from repro.sim.engine import Engine
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        app = build_app(name, cfg, **TINY[name])
        app.ensure_setup()
        mem = CoherentMemorySystem(cfg, app.allocator)
        Engine(cfg, mem).run(app.program)
        mem.check_invariants()

    def test_describe(self, name):
        assert name in tiny_app(name).describe()
