"""The interconnect subsystem: topology, latency providers, contention.

The load-bearing guarantees:

* :class:`TableLatency` is bit-identical to calling the Table 1 model
  directly (golden fixtures must not move under the default provider);
* :class:`MeshLatency` is Table-1 calibrated — the *mean* zero-load
  latency of every transaction shape equals the Table 1 row for every
  requesting node — and an unloaded mesh run lands within 2% of the
  flat-table execution time (the ISSUE's acceptance band);
* queueing delay grows with background load, and larger clusters degrade
  more slowly than 1-per-cluster because they send fewer, shorter-routed
  messages;
* network counters ride in :class:`RunResult` (and its JSON) only when a
  network model actually ran.
"""

import statistics

import pytest

from repro.core.config import (LatencyModel, MachineConfig, NetworkConfig)
from repro.core.executor import PointSpec
from repro.core.metrics import NetworkStats, RunResult
from repro.core.study import ClusteringStudy
from repro.network.contention import (UTILIZATION_CAP, ContentionModel)
from repro.network.latency import (MeshLatency, TableLatency,
                                   make_latency_provider)
from repro.network.topology import (CrossbarTopology, MeshTopology,
                                    make_topology, mesh_dims)

MESH_OFF = NetworkConfig(provider="mesh", contention=False)
OCEAN_KW = {"n": 16, "n_vcycles": 1}


# ------------------------------------------------------------------ topology


class TestMeshTopology:
    @pytest.mark.parametrize("n,dims", [(1, (1, 1)), (2, (1, 2)),
                                        (8, (2, 4)), (16, (4, 4)),
                                        (32, (4, 8)), (64, (8, 8))])
    def test_near_square_dims(self, n, dims):
        assert mesh_dims(n) == dims

    def test_coords_round_trip(self):
        topo = MeshTopology(32)
        for node in range(32):
            assert topo.node_at(*topo.coords(node)) == node

    def test_hops_metric(self):
        topo = MeshTopology(16)
        for a in range(16):
            assert topo.hops(a, a) == 0
            for b in range(16):
                assert topo.hops(a, b) == topo.hops(b, a)
                for c in range(16):
                    assert (topo.hops(a, c)
                            <= topo.hops(a, b) + topo.hops(b, c))

    def test_corner_to_corner(self):
        topo = MeshTopology(64)  # 8x8
        assert topo.hops(0, 63) == 14

    def test_route_length_equals_hops(self):
        topo = MeshTopology(32)
        for a in range(32):
            for b in range(32):
                route = topo.route(a, b)
                assert len(route) == topo.hops(a, b)
                assert all(0 <= link < topo.n_links for link in route)

    def test_routes_are_link_disjoint_per_step(self):
        # dimension-order routing never revisits a link
        topo = MeshTopology(64)
        route = topo.route(0, 63)
        assert len(set(route)) == len(route)

    def test_single_node_mesh(self):
        topo = MeshTopology(1)
        assert topo.hops(0, 0) == 0
        assert topo.route(0, 0) == ()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MeshTopology(4).coords(4)
        with pytest.raises(ValueError):
            MeshTopology(4).node_at(5, 0)


class TestCrossbarTopology:
    def test_unit_hops(self):
        topo = CrossbarTopology(8)
        assert topo.hops(3, 3) == 0
        assert all(topo.hops(a, b) == 1
                   for a in range(8) for b in range(8) if a != b)

    def test_route_is_destination_port(self):
        topo = CrossbarTopology(8)
        assert topo.route(2, 5) == (5,)
        assert topo.route(2, 2) == ()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            CrossbarTopology(4).hops(0, 4)


def test_make_topology():
    assert isinstance(make_topology("mesh", 4), MeshTopology)
    assert isinstance(make_topology("crossbar", 4), CrossbarTopology)
    with pytest.raises(ValueError):
        make_topology("hypercube", 4)


# ------------------------------------------------------------ TableLatency


class TestTableLatency:
    def test_bit_identical_to_model(self):
        model = LatencyModel()
        provider = TableLatency(model)
        for requester in range(4):
            for home in range(4):
                for owner in [None] + [o for o in range(4) if o != requester]:
                    assert (provider.miss_cycles(requester, home, owner, 17)
                            == model.miss_cycles(requester, home, owner))

    def test_same_error_contract(self):
        with pytest.raises(ValueError):
            TableLatency(LatencyModel()).miss_cycles(1, 0, 1)

    def test_hit_cycles_delegates(self):
        provider = TableLatency(LatencyModel())
        assert [provider.hit_cycles(c) for c in (1, 2, 4, 8, 64)] == \
            [1, 2, 3, 3, 3]

    def test_no_stats(self):
        assert TableLatency(LatencyModel()).stats() is None

    def test_default_provider_is_table(self):
        provider = make_latency_provider(MachineConfig(n_processors=8))
        assert isinstance(provider, TableLatency)


# ------------------------------------------------------------- MeshLatency


def mesh_provider(n_processors=64, cluster_size=1, **net_kwargs):
    net_kwargs.setdefault("provider", "mesh")
    config = MachineConfig(n_processors=n_processors,
                           cluster_size=cluster_size,
                           network=NetworkConfig(**net_kwargs))
    return MeshLatency(config)


class TestMeshCalibration:
    """Zero-load latencies match Table 1: the two-leg shapes exactly per
    (requester, home) pair, the three-leg dirty shape in the mean over
    uniformly distributed third-party owners."""

    @pytest.mark.parametrize("topology", ["mesh", "crossbar"])
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_two_leg_shapes_exact(self, n, topology):
        provider = mesh_provider(n_processors=n, contention=False,
                                 topology=topology)
        table = LatencyModel()
        for r in range(n):
            assert provider.miss_cycles(r, r, None) == table.local_clean
            for x in range(n):
                if x == r:
                    continue
                assert provider.miss_cycles(r, x, None) == table.remote_clean
                assert provider.miss_cycles(r, r, x) == \
                    table.local_dirty_remote

    @pytest.mark.parametrize("topology", ["mesh", "crossbar"])
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_three_leg_mean_matches_table(self, n, topology):
        provider = mesh_provider(n_processors=n, contention=False,
                                 topology=topology)
        table = LatencyModel()
        for r in range(n):
            for h in range(n):
                if h == r:
                    continue
                remote_dirty = statistics.mean(
                    provider.miss_cycles(r, h, o)
                    for o in range(n) if o not in (r, h))
                # per-transaction rounding moves the mean by < 0.5 cycles
                assert remote_dirty == pytest.approx(
                    table.remote_dirty_third_party, abs=0.5)

    def test_forward_hop_mean_closed_form_against_brute_force(self):
        # the three-leg calibration uses a row-sum closed form for
        # E_o[hops(h,o) + hops(o,r)]; check it against the O(n) definition
        for n in (4, 6, 12):
            topo = MeshTopology(n)
            provider = mesh_provider(n_processors=n, contention=False)
            for r in range(n):
                for h in range(n):
                    if h == r:
                        continue
                    brute = statistics.mean(
                        topo.hops(h, o) + topo.hops(o, r)
                        for o in range(n) if o not in (r, h))
                    assert provider._mean_forward_hops(r, h) == \
                        pytest.approx(brute)

    def test_dirty_at_home_priced_as_remote_clean(self):
        provider = mesh_provider(n_processors=16, contention=False)
        assert provider.miss_cycles(3, 7, 7) == provider.miss_cycles(3, 7,
                                                                     None)

    def test_requester_cannot_own(self):
        with pytest.raises(ValueError):
            mesh_provider(n_processors=8).miss_cycles(2, 0, 2)

    def test_single_cluster_machine(self):
        provider = mesh_provider(n_processors=8, cluster_size=8)
        assert provider.miss_cycles(0, 0, None) == LatencyModel().local_clean

    def test_latency_clamped_positive(self):
        # an absurd hop cost makes the three-leg base deeply negative for
        # owners near the requester; latencies must still be >= 1
        provider = mesh_provider(n_processors=16, contention=False,
                                 wire_cycles=40, router_cycles=40)
        lows = [provider.miss_cycles(r, h, o)
                for r in range(16) for h in range(16) if h != r
                for o in range(16) if o not in (r, h)]
        assert min(lows) >= 1

    def test_hit_cycles_delegates_to_table(self):
        provider = mesh_provider(n_processors=8)
        assert provider.hit_cycles(4) == LatencyModel().hit_cycles(4)

    def test_stats_accumulate(self):
        provider = mesh_provider(n_processors=16, contention=False)
        provider.miss_cycles(0, 5, None)
        provider.miss_cycles(0, 0, None)
        stats = provider.stats()
        assert stats.messages == 2
        assert stats.hops == 2 * MeshTopology(16).hops(0, 5)


# ---------------------------------------------------------------- contention


class TestContentionModel:
    def make(self, background=0.0):
        stats = NetworkStats()
        return ContentionModel(n_links=8, n_directories=2, link_service=2,
                               directory_service=6,
                               background_load=background, stats=stats), stats

    def test_cold_network_adds_no_delay(self):
        model, stats = self.make()
        assert model.transaction_delay((0, 1, 2), home=0, now=100) == 0.0
        assert stats.link_busy_cycles == 6
        assert stats.directory_busy_cycles == 6

    def test_self_induced_queueing(self):
        model, _ = self.make()
        model.transaction_delay((0,), home=0, now=10)
        assert model.transaction_delay((0,), home=0, now=10) > 0.0

    def test_background_load_monotone(self):
        delays = []
        for load in (0.0, 0.3, 0.6, 0.9):
            model, _ = self.make(load)
            delays.append(model.transaction_delay((0, 1), home=1, now=50))
        assert delays == sorted(delays)
        assert delays[-1] > delays[0]

    def test_utilization_capped(self):
        model, stats = self.make()  # zero background
        for _ in range(10_000):     # busy >> warmup floor: would read rho=4
            model.transaction_delay((0,), home=0, now=1)
        assert stats.peak_link_utilization == UTILIZATION_CAP

    def test_startup_burst_damped_by_warmup_floor(self):
        # a handful of early transactions must not read as saturation
        model, stats = self.make()
        for _ in range(10):
            model.transaction_delay((0,), home=0, now=5)
        assert stats.peak_link_utilization < 0.01

    def test_peak_utilization_recorded(self):
        model, stats = self.make(0.5)
        model.transaction_delay((0,), home=0, now=100)
        assert stats.peak_link_utilization >= 0.5


# ------------------------------------------------- end-to-end equivalence


def run_point(cluster_size, network=None, app="ocean", kwargs=OCEAN_KW,
              n_processors=8):
    config = MachineConfig(n_processors=n_processors,
                           cluster_size=cluster_size,
                           network=network or NetworkConfig())
    from repro.apps.registry import build_app

    return build_app(app, config, **kwargs).run()


class TestZeroLoadEquivalence:
    """Acceptance band: unloaded mesh within 2% of the flat table."""

    @pytest.mark.parametrize("app,kwargs", [
        ("ocean", {"n": 32, "n_vcycles": 1}),
        ("radix", {"n_keys": 2048, "radix": 32}),
    ])
    @pytest.mark.parametrize("cluster_size", [1, 2, 4])
    def test_within_two_percent(self, app, kwargs, cluster_size):
        table = run_point(cluster_size, app=app, kwargs=kwargs)
        mesh = run_point(cluster_size,
                         network=NetworkConfig(provider="mesh"),
                         app=app, kwargs=kwargs)
        deviation = abs(mesh.execution_time - table.execution_time) \
            / table.execution_time
        assert deviation < 0.02, \
            f"{app} @ {cluster_size}/cluster deviates {deviation:.2%}"

    def test_table_provider_unchanged_by_network_block(self):
        # golden guarantee: default provider ignores mesh-only knobs
        plain = run_point(2)
        tweaked = run_point(2, network=NetworkConfig(wire_cycles=9,
                                                     router_cycles=9))
        assert plain.to_json() == tweaked.to_json()


class TestLoadDegradation:
    """Larger clusters degrade more slowly under network load."""

    def test_slowdown_ordering(self):
        slowdowns = {}
        for c in (1, 4):
            base = run_point(c, NetworkConfig(provider="mesh"))
            loaded = run_point(c, NetworkConfig(provider="mesh",
                                                background_load=0.8))
            slowdowns[c] = loaded.execution_time / base.execution_time
        assert slowdowns[1] > slowdowns[4] > 1.0

    def test_loaded_run_reports_queueing(self):
        result = run_point(1, NetworkConfig(provider="mesh",
                                            background_load=0.8))
        assert result.network is not None
        assert result.network.queue_delay_cycles > 0
        assert result.network.peak_link_utilization >= 0.8


# ------------------------------------------------------- results plumbing


class TestResultPlumbing:
    def test_table_run_has_no_network_stats(self):
        result = run_point(2)
        assert result.network is None
        assert "network" not in result.to_dict()

    def test_mesh_run_round_trips_json(self):
        result = run_point(2, NetworkConfig(provider="mesh",
                                            background_load=0.3))
        assert result.network is not None
        assert result.network.messages > 0
        back = RunResult.from_json(result.to_json())
        assert back == result
        assert back.to_json() == result.to_json()

    def test_malformed_network_stats_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats.from_dict({"messages": 1})

    def test_snoopy_memory_uses_provider(self):
        from repro.apps.registry import build_app
        from repro.memory.snoopy import SnoopyClusterMemorySystem
        from repro.sim.engine import Engine

        config = MachineConfig(n_processors=8, cluster_size=2,
                               network=NetworkConfig(provider="mesh"))
        app = build_app("ocean", config, **OCEAN_KW)
        app.ensure_setup()
        mem = SnoopyClusterMemorySystem(config, app.allocator)
        result = Engine(config, mem).run(app.program)
        assert result.network is not None
        assert result.network.messages > 0

    def test_summary_mentions_network(self):
        from repro.sim.stats import summarize

        result = run_point(2, NetworkConfig(provider="mesh"))
        assert "network" in summarize(result).format()


# -------------------------------------------------------- sweep plumbing


class TestContentionSweep:
    def test_point_spec_network_override(self):
        net = NetworkConfig(provider="mesh", background_load=0.5)
        spec = PointSpec.make("ocean", 2, None, OCEAN_KW, network=net)
        config = spec.config_for(MachineConfig(n_processors=8))
        assert config.network == net
        assert "mesh net @ load 0.5" in spec.describe()

    def test_spec_without_network_inherits_base(self):
        spec = PointSpec.make("ocean", 2, None)
        base = MachineConfig(n_processors=8,
                             network=NetworkConfig(provider="mesh"))
        assert spec.config_for(base).network.provider == "mesh"

    def test_contention_sweep_grid_and_figure(self):
        from repro.analysis.figures import (contention_slowdown,
                                            figure_from_contention_sweep,
                                            render_slowdown)

        study = ClusteringStudy("ocean", MachineConfig(n_processors=8),
                                OCEAN_KW)
        sweep = study.contention_sweep(loads=(0.0, 0.6),
                                       cluster_sizes=(1, 2))
        assert set(sweep) == {(0.0, 1), (0.0, 2), (0.6, 1), (0.6, 2)}
        assert all(p.result.network is not None for p in sweep.values())
        # load 0 anchors with contention off (pure calibrated hop model);
        # loaded points charge queueing
        assert sweep[(0.0, 1)].result.network.queue_delay_cycles == 0
        assert sweep[(0.6, 1)].result.network.queue_delay_cycles > 0

        fig = figure_from_contention_sweep("contention", sweep)
        assert [g.label for g in fig.groups] == ["0", "0.6"]
        for group in fig.groups:
            assert group.bars[0].label == "1p"
            assert group.bars[0].total == pytest.approx(100.0)

        slow = contention_slowdown(sweep)
        assert slow[1][0.0] == pytest.approx(1.0)
        assert slow[1][0.6] > 1.0
        text = render_slowdown(slow, "slowdown")
        assert "load 0.6" in text and "1p" in text
