"""Trace keys and the two-tier (memory LRU + disk) compiled-trace cache."""

import warnings

import pytest

from repro.apps.registry import build_app
from repro.core.config import MachineConfig
from repro.core.executor import PointSpec, evaluate_point
from repro.core.resultcache import TraceStore
from repro.sim.compiled import (ENV_TRACE_LRU, TraceCache, clear_memory_cache,
                                compile_program, memory_cache_len, trace_key)
from repro.sim.program import OP_WORK


@pytest.fixture(autouse=True)
def _fresh_memory_tier():
    """The memory LRU is process-wide state; isolate it per test."""
    clear_memory_cache()
    yield
    clear_memory_cache()


def tiny_program(n_processors=2):
    def factory(pid):
        yield OP_WORK, 10
    return compile_program(factory, n_processors, 64)


BASE = MachineConfig(n_processors=8, cluster_size=2,
                     cache_kb_per_processor=4.0)
KWARGS = {"n": 32, "block": 8}


def key_at(config=BASE, kwargs=KWARGS, seed=12345, stream_invariant=True):
    return trace_key("lu", kwargs, config, seed,
                     stream_invariant=stream_invariant)


# ---------------------------------------------------------------------- keys

class TestTraceKey:
    def test_seed_changes_key(self):
        assert key_at(seed=1) != key_at(seed=2)

    def test_problem_scale_changes_key(self):
        assert key_at(kwargs={"n": 32, "block": 8}) != \
            key_at(kwargs={"n": 64, "block": 8})

    def test_line_size_changes_key(self):
        other = MachineConfig(n_processors=8, cluster_size=2,
                              cache_kb_per_processor=4.0, line_size=32)
        assert key_at(config=other) != key_at()

    def test_processor_count_changes_key(self):
        other = MachineConfig(n_processors=16, cluster_size=2,
                              cache_kb_per_processor=4.0)
        assert key_at(config=other) != key_at()

    def test_cluster_size_preserves_key_for_invariant_streams(self):
        """The whole point: one trace serves the entire clustering sweep."""
        for cluster in (1, 4, 8):
            other = MachineConfig(n_processors=8, cluster_size=cluster,
                                  cache_kb_per_processor=4.0)
            assert key_at(config=other) == key_at()

    def test_cache_capacity_preserves_key_for_invariant_streams(self):
        for cache_kb in (None, 0.5, 64.0):
            other = MachineConfig(n_processors=8, cluster_size=2,
                                  cache_kb_per_processor=cache_kb)
            assert key_at(config=other) == key_at()

    def test_dynamic_key_covers_full_config(self):
        """Recorded captures are config-specific; their keys must be too."""
        other = MachineConfig(n_processors=8, cluster_size=4,
                              cache_kb_per_processor=4.0)
        assert key_at(config=other, stream_invariant=False) != \
            key_at(stream_invariant=False)


# --------------------------------------------------------------------- tiers

class TestTraceCache:
    def test_memory_tier_round_trip(self):
        cache = TraceCache()
        assert cache.get("k") is None
        program = tiny_program()
        cache.put("k", program)
        assert cache.get("k") is program
        assert cache.memory_hits == 1 and cache.misses == 1

    def test_memory_tier_shared_across_instances(self):
        program = tiny_program()
        TraceCache().put("shared", program)
        assert TraceCache().get("shared") is program

    def test_disk_tier_round_trip(self, tmp_path):
        cache = TraceCache(TraceStore(tmp_path))
        cache.put("k", tiny_program())
        clear_memory_cache()  # force the disk path
        fresh = TraceCache(TraceStore(tmp_path))
        got = fresh.get("k")
        assert got is not None and fresh.disk_hits == 1
        assert [list(o) for o in got.ops] == [list(o) for o in tiny_program().ops]

    def test_corrupt_disk_entry_warns_and_misses(self, tmp_path):
        store = TraceStore(tmp_path)
        cache = TraceCache(store)
        cache.put("k", tiny_program())
        clear_memory_cache()
        store.path_for("k").write_bytes(b"garbage not a trace")
        with pytest.warns(UserWarning, match="corrupt compiled trace"):
            assert cache.get("k") is None
        # regeneration overwrites the bad entry and it reads back fine
        cache.put("k", tiny_program())
        clear_memory_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get("k") is not None

    def test_lru_capacity_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_LRU, "2")
        cache = TraceCache()
        for i in range(3):
            cache.put(f"k{i}", tiny_program())
        assert memory_cache_len() == 2
        assert cache.get("k0") is None      # evicted (oldest)
        assert cache.get("k2") is not None  # newest survives

    def test_lru_get_refreshes_recency(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_LRU, "2")
        cache = TraceCache()
        cache.put("a", tiny_program())
        cache.put("b", tiny_program())
        cache.get("a")                      # a becomes most recent
        cache.put("c", tiny_program())      # evicts b, not a
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_stats_string(self):
        cache = TraceCache()
        cache.get("missing")
        assert "1 misses" in cache.stats()


# ----------------------------------------------------------- executor usage

class TestExecutorIntegration:
    def test_invariant_app_reuses_trace_across_clusters(self):
        base = MachineConfig(cache_kb_per_processor=4.0)
        cache = TraceCache()
        specs = [PointSpec.make("lu", cs, 4.0, KWARGS) for cs in (1, 2, 4)]
        results = [evaluate_point(s, base, trace_cache=cache) for s in specs]
        # one compile, then hits: the second and third points reuse it
        assert cache.memory_hits == 2 and cache.misses == 1
        # and every mode agrees with the uncached generator path
        for spec, result in zip(specs, results):
            want = evaluate_point(spec, base, use_compiled=False)
            assert result.to_json() == want.to_json()

    def test_dynamic_app_caches_per_config(self):
        base = MachineConfig(cache_kb_per_processor=4.0)
        cache = TraceCache()
        spec = PointSpec.make("raytrace", 2, 4.0,
                              {"width": 8, "height": 8, "n_spheres": 8})
        first = evaluate_point(spec, base, trace_cache=cache)
        assert cache.misses == 1
        second = evaluate_point(spec, base, trace_cache=cache)
        assert cache.memory_hits == 1
        assert first.to_json() == second.to_json()

    def test_disk_tier_spans_processes_conceptually(self, tmp_path):
        """A fresh process (simulated by clearing the LRU) hits the store."""
        base = MachineConfig(cache_kb_per_processor=4.0)
        spec = PointSpec.make("lu", 2, 4.0, KWARGS)
        store = TraceStore(tmp_path)
        first = evaluate_point(spec, base, trace_cache=TraceCache(store))
        clear_memory_cache()
        cache = TraceCache(TraceStore(tmp_path))
        second = evaluate_point(spec, base, trace_cache=cache)
        assert cache.disk_hits == 1
        assert first.to_json() == second.to_json()
