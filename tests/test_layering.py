"""The layering lint: clean on the real tree, loud on an upward import."""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).parent.parent / "tools"
SRC = Path(__file__).parent.parent / "src"
sys.path.insert(0, str(TOOLS))

import check_layering  # noqa: E402  (path set up above)


class TestRankMap:
    def test_longest_prefix_wins(self):
        # the foundation modules rank below the rest of repro.core
        assert check_layering.rank_of("repro.core.config") == 0
        assert check_layering.rank_of("repro.core.metrics") == 0
        assert check_layering.rank_of("repro.core.executor") == 7
        assert check_layering.rank_of("repro.core") == 7

    def test_batch_ranks_above_its_parent_package(self):
        # repro.sim.batch drives runtime sessions, so it sits above
        # repro.runtime while the rest of repro.sim stays at the sim rank
        assert check_layering.rank_of("repro.sim.engine") == 3
        assert check_layering.rank_of("repro.sim.batch") == 6
        assert check_layering.rank_of("repro.sim.batch.engine") == 6

    def test_native_sits_between_memory_and_sim(self):
        # the C kernel package is below sim (sim.nativereplay imports it)
        # and above memory (its driver writes memory state back)
        rank = check_layering.rank_of
        assert rank("repro.native") == 2
        assert rank("repro.native.driver") == 2
        assert rank("repro.memory.coherence") < rank("repro.native")
        assert rank("repro.native") < rank("repro.sim.nativereplay")

    def test_layer_order_matches_the_dag(self):
        rank = check_layering.rank_of
        assert rank("repro.memory.coherence") < rank("repro.sim.engine")
        assert rank("repro.sim.engine") < rank("repro.apps.base")
        assert rank("repro.apps.base") < rank("repro.runtime.session")
        assert rank("repro.runtime.session") < rank("repro.sim.batch")
        assert rank("repro.sim.batch") < rank("repro.core.executor")
        assert rank("repro.core.study") < rank("repro.analysis")
        assert rank("repro.analysis") < rank("repro.cli")

    def test_service_sits_between_sweep_machinery_and_analysis(self):
        # the daemon drives the executor (core) but must stay importable
        # by analysis/cli; it may never be imported from below
        rank = check_layering.rank_of
        assert rank("repro.core.executor") < rank("repro.service.daemon")
        assert rank("repro.service") == 8
        assert rank("repro.service.daemon") < rank("repro.analysis")
        assert rank("repro.service.client") < rank("repro.cli")

    def test_non_repro_modules_are_ignored(self):
        assert check_layering.rank_of("numpy") is None
        assert check_layering.rank_of("reprographics") is None


class TestRealTree:
    def test_the_shipped_tree_is_clean(self):
        assert check_layering.check(SRC) == []

    def test_main_exits_zero_on_clean_tree(self, capsys):
        assert check_layering.main([str(SRC)]) == 0
        assert "layering OK" in capsys.readouterr().out

    def test_main_rejects_missing_root(self, capsys):
        assert check_layering.main(["no/such/dir"]) == 2


class TestInjectedViolation:
    def _tree(self, tmp_path: Path, engine_body: str) -> Path:
        """A miniature repro package with a controllable sim module."""
        root = tmp_path / "src"
        for pkg in ("repro", "repro/sim", "repro/core"):
            (root / pkg).mkdir(parents=True)
            (root / pkg / "__init__.py").write_text("")
        (root / "repro/core/study.py").write_text("X = 1\n")
        (root / "repro/sim/engine.py").write_text(engine_body)
        return root

    def test_upward_import_is_reported(self, tmp_path, capsys):
        # sim (rank 3) reaching into core.study (rank 7): a violation
        root = self._tree(tmp_path,
                          "from ..core.study import X\n")
        violations = check_layering.check(root)
        assert violations == [
            "repro.sim.engine (rank 3) imports repro.core.study (rank 7)"]
        assert check_layering.main([str(root)]) == 1
        assert "layering violation" in capsys.readouterr().err

    def test_deferred_upward_import_is_still_reported(self, tmp_path):
        root = self._tree(tmp_path,
                          "def f():\n    import repro.core.study\n")
        assert len(check_layering.check(root)) == 1

    def test_downward_and_foundation_imports_pass(self, tmp_path):
        # sim may import the rank-0 foundation slice of repro.core, but
        # only by full module path — `from ..core import config` would
        # execute repro.core's __init__ (the whole rank-5 layer)
        root = self._tree(
            tmp_path,
            "from ..core.config import Y\nimport repro.core.metrics\n")
        (root / "repro/core/config.py").write_text("Y = 2\n")
        (root / "repro/core/metrics.py").write_text("Z = 3\n")
        assert check_layering.check(root) == []

    def test_importing_a_layer_package_uses_the_package_rank(self, tmp_path):
        # `from ..core import config` is flagged: it runs repro.core's
        # __init__, which imports the sweep machinery
        root = self._tree(tmp_path, "from ..core import config\n")
        (root / "repro/core/config.py").write_text("Y = 2\n")
        assert len(check_layering.check(root)) == 1
