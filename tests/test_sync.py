"""Unit tests for barriers, locks, and the sync registry."""

import pytest

from repro.sim.sync import BarrierState, LockState, SyncRegistry


class TestBarrier:
    def test_fills_then_releases(self):
        b = BarrierState(3)
        assert b.arrive(0, now=10) is None
        assert b.arrive(1, now=20) is None
        releases = b.arrive(2, now=50)
        assert dict(releases) == {0: 40, 1: 30, 2: 0}

    def test_reusable(self):
        b = BarrierState(2)
        b.arrive(0, 0)
        b.arrive(1, 5)
        assert b.episodes == 1
        assert b.arrive(0, 10) is None
        releases = b.arrive(1, 12)
        assert dict(releases) == {0: 2, 1: 0}
        assert b.episodes == 2

    def test_single_participant_trivial(self):
        b = BarrierState(1)
        assert b.arrive(0, 7) == [(0, 0)]

    def test_n_waiting(self):
        b = BarrierState(3)
        b.arrive(0, 0)
        assert b.n_waiting == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BarrierState(0)


class TestLock:
    def test_uncontended_acquire(self):
        lk = LockState()
        assert lk.acquire(0, 0) is True
        assert lk.holder == 0
        assert lk.acquisitions == 1

    def test_contended_queueing_fifo(self):
        lk = LockState()
        lk.acquire(0, 0)
        assert lk.acquire(1, 5) is False
        assert lk.acquire(2, 7) is False
        pid, wait = lk.release(0, 20)
        assert (pid, wait) == (1, 15)
        pid, wait = lk.release(1, 30)
        assert (pid, wait) == (2, 23)
        assert lk.release(2, 40) is None
        assert lk.holder is None

    def test_contended_counter(self):
        lk = LockState()
        lk.acquire(0, 0)
        lk.acquire(1, 0)
        lk.release(0, 10)
        assert lk.contended_acquisitions == 1

    def test_reacquire_while_held_raises(self):
        lk = LockState()
        lk.acquire(0, 0)
        with pytest.raises(RuntimeError):
            lk.acquire(0, 5)

    def test_release_by_non_holder_raises(self):
        lk = LockState()
        lk.acquire(0, 0)
        with pytest.raises(RuntimeError):
            lk.release(1, 5)


class TestRegistry:
    def test_lazily_creates(self):
        reg = SyncRegistry(4)
        b = reg.barrier(7)
        assert b.n_participants == 4
        assert reg.barrier(7) is b
        lk = reg.lock(3)
        assert reg.lock(3) is lk

    def test_idle_check_clean(self):
        reg = SyncRegistry(2)
        assert reg.idle_check() is None

    def test_idle_check_reports_stuck_barrier(self):
        reg = SyncRegistry(2)
        reg.barrier(0).arrive(0, 0)
        msg = reg.idle_check()
        assert msg is not None and "barrier 0" in msg

    def test_idle_check_reports_stuck_lock(self):
        reg = SyncRegistry(2)
        reg.lock(4).acquire(0, 0)
        reg.lock(4).acquire(1, 0)
        msg = reg.idle_check()
        assert msg is not None and "lock 4" in msg
