"""Property-based tests (hypothesis) on the core data structures and
protocol invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.contention import bank_conflict_probability
from repro.core.metrics import MissCause, TimeBreakdown
from repro.memory.allocation import PageAllocator
from repro.memory.cache import EXCLUSIVE, SHARED, FullyAssociativeCache
from repro.memory.coherence import CoherentMemorySystem
from repro.sim.engine import run_program
from repro.sim.program import Barrier, Read, Work, Write

# ---------------------------------------------------------------- caches


@given(capacity=st.integers(1, 32),
       lines=st.lists(st.integers(0, 64), min_size=1, max_size=200))
def test_cache_never_exceeds_capacity(capacity, lines):
    c = FullyAssociativeCache(capacity)
    for line in lines:
        if c.lookup(line) < 0:
            c.insert(line, SHARED)
        assert len(c) <= capacity


@given(capacity=st.integers(2, 16),
       lines=st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_lru_evicts_least_recently_touched(capacity, lines):
    """Model-based check against an explicit recency list."""
    c = FullyAssociativeCache(capacity)
    recency: list[int] = []  # LRU .. MRU
    for line in lines:
        if c.lookup(line) >= 0:
            recency.remove(line)
            recency.append(line)
            continue
        victim = c.insert(line, SHARED)
        if victim is not None:
            assert victim.line == recency.pop(0)
        recency.append(line)
    assert c.resident_lines() == recency


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_infinite_cache_retains_everything(lines):
    c = FullyAssociativeCache(None)
    for line in lines:
        if c.lookup(line) < 0:
            c.insert(line, EXCLUSIVE)
    assert set(c.resident_lines()) == set(lines)


# ---------------------------------------------------------------- allocator


@given(n_clusters=st.integers(1, 16),
       pages=st.lists(st.integers(0, 1000), min_size=1, max_size=200))
def test_allocator_deterministic_and_stable(n_clusters, pages):
    a = PageAllocator(n_clusters)
    b = PageAllocator(n_clusters)
    lines_per_page = a.page_size // a.line_size
    for p in pages:
        assert a.home_of_line(p * lines_per_page) == \
            b.home_of_line(p * lines_per_page)
    for p in pages:
        h = a.bound_home(p)
        assert h is not None and 0 <= h < n_clusters
        assert a.home_of_line(p * lines_per_page) == h


@given(n_clusters=st.integers(1, 8), n_pages=st.integers(1, 64))
def test_round_robin_is_balanced(n_clusters, n_pages):
    a = PageAllocator(n_clusters)
    lines_per_page = a.page_size // a.line_size
    for p in range(n_pages):
        a.home_of_line(p * lines_per_page)
    hist = a.home_histogram()
    assert max(hist) - min(hist) <= 1


# ---------------------------------------------------------------- protocol

_access = st.tuples(st.integers(0, 7),       # processor
                    st.integers(0, 40),      # line
                    st.booleans())           # is_write


@given(accesses=st.lists(_access, min_size=1, max_size=300),
       cluster_size=st.sampled_from([1, 2, 4]),
       cache_kb=st.sampled_from([0.5, 1.0, None]))
@settings(max_examples=40, deadline=None)
def test_protocol_invariants_hold_under_random_traces(accesses, cluster_size,
                                                      cache_kb):
    cfg = MachineConfig(n_processors=8, cluster_size=cluster_size,
                        cache_kb_per_processor=cache_kb)
    mem = CoherentMemorySystem(cfg)
    t = 0
    for proc, line, is_write in accesses:
        t += 200  # past any pending fill
        if is_write:
            mem.write(proc, line, t)
        else:
            mem.read(proc, line, t)
    mem.check_invariants()
    total = mem.aggregate_counters()
    assert total.references == len(accesses)
    assert sum(total.by_cause.values()) == total.misses


@given(accesses=st.lists(_access, min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_single_cluster_has_no_coherence_misses(accesses):
    """With all processors in one cluster there is nobody to communicate
    with: every miss must be cold or capacity."""
    cfg = MachineConfig(n_processors=8, cluster_size=8,
                        cache_kb_per_processor=1)
    mem = CoherentMemorySystem(cfg)
    t = 0
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            mem.write(proc, line, t)
        else:
            mem.read(proc, line, t)
    assert mem.aggregate_counters().by_cause[MissCause.COHERENCE] == 0


@given(accesses=st.lists(_access, min_size=1, max_size=150))
@settings(max_examples=30, deadline=None)
def test_infinite_cache_misses_bounded_by_lines_and_invals(accesses):
    """With infinite caches, misses per cluster ≤ distinct lines +
    invalidations received."""
    cfg = MachineConfig(n_processors=8, cluster_size=2)
    mem = CoherentMemorySystem(cfg)
    t = 0
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            mem.write(proc, line, t)
        else:
            mem.read(proc, line, t)
    total = mem.aggregate_counters()
    distinct = len({line for _, line, _ in accesses})
    assert total.by_cause[MissCause.CAPACITY] == 0
    assert total.misses <= distinct * cfg.n_clusters + \
        mem.directory.invalidations_sent


# ---------------------------------------------------------------- engine


@given(works=st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_sequential_work_sums(works):
    cfg = MachineConfig(n_processors=1)
    res = run_program(cfg, lambda pid: iter([Work(w) for w in works]))
    assert res.execution_time == sum(works)


@given(seed=st.integers(0, 2**16),
       n_ops=st.integers(1, 120),
       cluster_size=st.sampled_from([1, 2, 4]))
@settings(max_examples=30, deadline=None)
def test_engine_accounting_exact_under_random_programs(seed, n_ops,
                                                       cluster_size):
    """cpu+load+merge+sync == execution time for every processor, for any
    program mix."""
    import random
    cfg = MachineConfig(n_processors=4, cluster_size=cluster_size,
                        cache_kb_per_processor=1)
    # op *kinds* must agree across processors (barriers are global), so
    # they come from a shared sequence; operands may differ per processor.
    kind_rng = random.Random(seed)
    kinds = [kind_rng.random() for _ in range(n_ops)]

    def factory(pid):
        rng = random.Random(seed * 13 + pid)
        def gen():
            for i, k in enumerate(kinds):
                if k < 0.3:
                    yield Work(rng.randrange(20))
                elif k < 0.6:
                    yield Read(rng.randrange(100) * 64)
                elif k < 0.9:
                    yield Write(rng.randrange(100) * 64)
                else:
                    yield Barrier(i)
        return gen()

    res = run_program(cfg, factory)
    for bd in res.per_processor:
        assert bd.total == res.execution_time


# ---------------------------------------------------------------- formulae


@given(n=st.integers(2, 64), m=st.integers(1, 512))
def test_conflict_probability_in_unit_interval(n, m):
    c = bank_conflict_probability(n, m)
    assert 0.0 <= c <= 1.0  # m=1 with n>1 collides with certainty


@given(n=st.integers(2, 32))
def test_conflict_probability_monotone_in_processors(n):
    assert bank_conflict_probability(n + 1, 64) > \
        bank_conflict_probability(n, 64)


@given(cpu=st.integers(0, 10**6), load=st.integers(0, 10**6),
       merge=st.integers(0, 10**6), sync=st.integers(0, 10**6))
def test_breakdown_fractions_sum_to_one(cpu, load, merge, sync):
    bd = TimeBreakdown(cpu, load, merge, sync)
    fr = bd.fractions()
    if bd.total:
        assert abs(sum(fr.values()) - 1.0) < 1e-9
    else:
        assert sum(fr.values()) == 0.0


@given(baseline=st.integers(1, 10**6), cpu=st.integers(0, 10**6))
def test_normalization_linear(baseline, cpu):
    bd = TimeBreakdown(cpu=cpu)
    got = bd.normalized_to(baseline)["cpu"]
    assert got == pytest.approx(100.0 * cpu / baseline, rel=1e-12)


@given(accesses=st.lists(_access, min_size=1, max_size=250),
       cluster_size=st.sampled_from([1, 2, 4]),
       cache_kb=st.sampled_from([0.5, 1.0, None]))
@settings(max_examples=30, deadline=None)
def test_snoopy_invariants_hold_under_random_traces(accesses, cluster_size,
                                                    cache_kb):
    from repro.memory.snoopy import SnoopyClusterMemorySystem
    cfg = MachineConfig(n_processors=8, cluster_size=cluster_size,
                        cache_kb_per_processor=cache_kb)
    mem = SnoopyClusterMemorySystem(cfg)
    t = 0
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            mem.write(proc, line, t)
        else:
            mem.read(proc, line, t)
    mem.check_invariants()
    assert mem.aggregate_counters().references == len(accesses)


@given(accesses=st.lists(_access, min_size=2, max_size=150))
@settings(max_examples=25, deadline=None)
def test_snoopy_c2c_never_slower_than_memory(accesses):
    """Every cache-to-cache service must be cheaper than any Table-1
    miss path, by construction."""
    from repro.memory.snoopy import (DEFAULT_C2C_LATENCY,
                                     SnoopyClusterMemorySystem)
    cfg = MachineConfig(n_processors=8, cluster_size=4)
    mem = SnoopyClusterMemorySystem(cfg)
    t = 0
    stalls = []
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            mem.write(proc, line, t)
        else:
            _, stall = mem.read(proc, line, t)
            if stall:
                stalls.append(stall)
    assert all(s == DEFAULT_C2C_LATENCY or s >= 30 for s in stalls)


@given(accesses=st.lists(_access, min_size=1, max_size=120))
@settings(max_examples=20, deadline=None)
def test_shared_cache_never_more_misses_than_unclustered_inf(accesses):
    """With infinite caches, an 8-way shared cache sees at most as many
    misses as 8 private per-processor clusters: every private fetch is
    also satisfied by (or merged into) the shared cache."""
    flat = MachineConfig(n_processors=8, cluster_size=1)
    clustered = MachineConfig(n_processors=8, cluster_size=8)
    m_flat = CoherentMemorySystem(flat)
    m_clus = CoherentMemorySystem(clustered)
    t = 0
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            m_flat.write(proc, line, t)
            m_clus.write(proc, line, t)
        else:
            m_flat.read(proc, line, t)
            m_clus.read(proc, line, t)
    assert m_clus.aggregate_counters().misses <= \
        m_flat.aggregate_counters().misses


@given(accesses=st.lists(_access, min_size=1, max_size=120))
@settings(max_examples=20, deadline=None)
def test_invalidations_never_increase_with_clustering(accesses):
    """Fewer coherence participants can only reduce invalidation traffic
    (intra-cluster writes stop generating invalidations entirely)."""
    flat = MachineConfig(n_processors=8, cluster_size=1)
    clustered = MachineConfig(n_processors=8, cluster_size=4)
    m_flat = CoherentMemorySystem(flat)
    m_clus = CoherentMemorySystem(clustered)
    t = 0
    for proc, line, is_write in accesses:
        t += 200
        if is_write:
            m_flat.write(proc, line, t)
            m_clus.write(proc, line, t)
        else:
            m_flat.read(proc, line, t)
            m_clus.read(proc, line, t)
    assert m_clus.directory.invalidations_sent <= \
        m_flat.directory.invalidations_sent
