"""Unit tests for address arithmetic and the region allocator."""

import pytest

from repro.memory.address import (AddressSpace, Region, align_up, line_of,
                                  page_of)


class TestLineMath:
    def test_line_of_zero(self):
        assert line_of(0) == 0

    def test_line_of_boundaries(self):
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_of(127) == 1
        assert line_of(128) == 2

    def test_line_of_custom_size(self):
        assert line_of(64, line_size=32) == 2

    def test_page_of(self):
        assert page_of(4095) == 0
        assert page_of(4096) == 1

    def test_align_up_exact(self):
        assert align_up(8192, 4096) == 8192

    def test_align_up_rounds(self):
        assert align_up(1, 4096) == 4096
        assert align_up(4097, 4096) == 8192

    def test_align_up_zero(self):
        assert align_up(0, 64) == 0

    def test_align_up_rejects_nonpositive_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestRegion:
    def test_element_addresses(self):
        r = Region("r", base=4096, size=4096, element_size=8)
        assert r.element(0) == 4096
        assert r.element(1) == 4104
        assert r.element(511) == 4096 + 511 * 8

    def test_element_out_of_range(self):
        r = Region("r", base=0, size=64, element_size=8)
        with pytest.raises(IndexError):
            r.element(8)
        with pytest.raises(IndexError):
            r.element(-1)

    def test_n_elements(self):
        assert Region("r", 0, 4096, 16).n_elements == 256

    def test_contains(self):
        r = Region("r", 100, 50)
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert not r.contains(99)

    def test_lines_span(self):
        r = Region("r", base=64, size=128)
        assert list(r.lines()) == [1, 2]

    def test_lines_unaligned_region(self):
        r = Region("r", base=32, size=64)
        assert list(r.lines()) == [0, 1]


class TestAddressSpace:
    def test_regions_page_aligned(self):
        sp = AddressSpace()
        a = sp.allocate("a", 10)
        b = sp.allocate("b", 10)
        assert a.base % sp.page_size == 0
        assert b.base % sp.page_size == 0
        assert b.base >= a.end

    def test_regions_never_share_pages(self):
        sp = AddressSpace()
        a = sp.allocate("a", 1)
        b = sp.allocate("b", 1)
        assert a.base // sp.page_size != b.base // sp.page_size

    def test_duplicate_name_rejected(self):
        sp = AddressSpace()
        sp.allocate("x", 1)
        with pytest.raises(ValueError):
            sp.allocate("x", 1)

    def test_lookup_by_name(self):
        sp = AddressSpace()
        r = sp.allocate("grid", 100)
        assert sp.region("grid") is r

    def test_find_by_address(self):
        sp = AddressSpace()
        a = sp.allocate("a", 100)
        b = sp.allocate("b", 100)
        assert sp.find(a.element(5)) is a
        assert sp.find(b.element(0)) is b
        assert sp.find(10**12) is None

    def test_element_size_respected(self):
        sp = AddressSpace()
        r = sp.allocate("c", 4, element_size=16)
        assert r.element(1) - r.element(0) == 16

    def test_rejects_bad_sizes(self):
        sp = AddressSpace()
        with pytest.raises(ValueError):
            sp.allocate("bad", 0)
        with pytest.raises(ValueError):
            sp.allocate("bad", 1, element_size=0)

    def test_page_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            AddressSpace(page_size=100, line_size=64)

    def test_bytes_allocated_grows(self):
        sp = AddressSpace()
        assert sp.bytes_allocated == 0
        sp.allocate("a", 1)
        assert sp.bytes_allocated == sp.page_size

    def test_regions_sorted_by_base(self):
        sp = AddressSpace()
        sp.allocate("z", 1)
        sp.allocate("a", 1)
        bases = [r.base for r in sp.regions()]
        assert bases == sorted(bases)
