"""Shared fixtures: machine configurations and the sweep-service daemon."""

import time

import pytest

from repro.core.config import MachineConfig


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test directory.

    Keeps the suite hermetic: no test reads results memoized by an earlier
    run (or an earlier test), and nothing is written to ``~/.cache``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def cfg4() -> MachineConfig:
    """4 processors in 2-way clusters, 4 KB/processor caches."""
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=4)


@pytest.fixture
def cfg8() -> MachineConfig:
    """8 processors in 4-way clusters, infinite caches."""
    return MachineConfig(n_processors=8, cluster_size=4)


@pytest.fixture
def cfg16() -> MachineConfig:
    """16 processors in 2-way clusters, 16 KB/processor caches."""
    return MachineConfig(n_processors=16, cluster_size=2,
                         cache_kb_per_processor=16)


def assert_no_leaked_workers(processes, deadline_s: float = 15.0) -> None:
    """Fail if any captured pool worker process outlives its daemon.

    ``processes`` are ``multiprocessing.Process`` handles captured
    *before* shutdown; ``is_alive()`` also reaps zombies, so a worker
    that exited but was not yet joined counts as gone.
    """
    deadline = time.monotonic() + deadline_s
    for proc in processes:
        while proc.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not proc.is_alive(), \
            f"sweep-service worker pid {proc.pid} leaked past daemon teardown"


@pytest.fixture(scope="session")
def serve_daemon(tmp_path_factory):
    """One warm sweep-service daemon shared by the whole service suite.

    Session-scoped so the tests don't each pay daemon startup: the
    daemon runs on a background thread with an ephemeral port, a
    session-private persistent result cache, and the in-process (serial)
    execution backend — same-process execution is what lets the parity
    tests compare daemon-served results against direct
    :class:`~repro.runtime.session.RunSession` runs byte for byte.

    Teardown stops the daemon and asserts that no executor worker
    process outlived it (trivially true for the serial backend, and the
    check keeps honest any future fixture switch to process/fork).
    """
    from repro.service import DaemonThread

    daemon = DaemonThread(
        base_config=MachineConfig(n_processors=8),
        cache_dir=tmp_path_factory.mktemp("service-result-cache"))
    daemon.start()
    yield daemon
    workers = daemon.worker_processes()
    daemon.stop()
    assert_no_leaked_workers(workers)
