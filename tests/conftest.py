"""Shared fixtures: small machine configurations used across the suite."""

import pytest

from repro.core.config import MachineConfig


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test directory.

    Keeps the suite hermetic: no test reads results memoized by an earlier
    run (or an earlier test), and nothing is written to ``~/.cache``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def cfg4() -> MachineConfig:
    """4 processors in 2-way clusters, 4 KB/processor caches."""
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=4)


@pytest.fixture
def cfg8() -> MachineConfig:
    """8 processors in 4-way clusters, infinite caches."""
    return MachineConfig(n_processors=8, cluster_size=4)


@pytest.fixture
def cfg16() -> MachineConfig:
    """16 processors in 2-way clusters, 16 KB/processor caches."""
    return MachineConfig(n_processors=16, cluster_size=2,
                         cache_kb_per_processor=16)
