"""Tests for reference-trace capture and trace-driven replay."""

import numpy as np
import pytest

from repro.apps.registry import build_app
from repro.core.config import MachineConfig
from repro.memory.coherence import CoherentMemorySystem
from repro.sim.engine import Engine
from repro.sim.trace import (KIND_READ, KIND_WRITE, ReferenceTrace,
                             TracingMemory, replay)


def record_ocean(cluster=2, cache=4.0):
    cfg = MachineConfig(n_processors=4, cluster_size=cluster,
                        cache_kb_per_processor=cache)
    app = build_app("ocean", cfg, n=16, n_vcycles=1)
    app.ensure_setup()
    tm = TracingMemory(CoherentMemorySystem(cfg, app.allocator))
    result = Engine(cfg, tm).run(app.program)
    return cfg, app, tm, result


class TestCapture:
    def test_records_every_reference(self):
        _, _, tm, result = record_ocean()
        trace = tm.trace()
        assert len(trace) == result.misses.references

    def test_read_write_split_matches(self):
        _, _, tm, result = record_ocean()
        s = tm.trace().summary()
        assert s["reads"] == result.misses.reads
        assert s["writes"] == result.misses.writes

    def test_times_nondecreasing_per_processor(self):
        _, _, tm, _ = record_ocean()
        trace = tm.trace()
        for p in range(4):
            mask = trace.processors == p
            t = trace.times[mask]
            assert np.all(np.diff(t) >= 0)

    def test_retries_not_double_recorded(self):
        """Merged-read retries are re-issues, not new references."""
        _, _, tm, result = record_ocean()
        assert len(tm.trace()) == result.misses.references

    def test_record_accessors(self):
        _, _, tm, _ = record_ocean()
        trace = tm.trace()
        rec = trace[0]
        assert rec.kind in (KIND_READ, KIND_WRITE)
        assert rec.time >= 0

    def test_footprint(self):
        _, _, tm, _ = record_ocean()
        trace = tm.trace()
        assert trace.footprint_bytes() == \
            len(np.unique(trace.lines)) * 64


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        _, _, tm, _ = record_ocean()
        trace = tm.trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ReferenceTrace.load(path)
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.lines, trace.lines)
        assert np.array_equal(loaded.times, trace.times)

    def test_empty_trace_summary(self):
        t = ReferenceTrace()
        assert t.summary()["references"] == 0


class TestReplay:
    def test_replay_reproduces_reference_counts(self):
        cfg, app, tm, result = record_ocean()
        fresh = CoherentMemorySystem(cfg, _fresh_allocator(app, cfg))
        counters = replay(tm.trace(), fresh)
        assert counters.references == result.misses.references
        assert counters.reads == result.misses.reads

    def test_replay_against_other_configuration(self):
        """The point of trace-driven study: same trace, different cache."""
        cfg, app, tm, _ = record_ocean(cache=1.0)
        big = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=64)
        small_counters = replay(tm.trace(), CoherentMemorySystem(
            cfg, _fresh_allocator(app, cfg)))
        big_counters = replay(tm.trace(), CoherentMemorySystem(
            big, _fresh_allocator(app, big)))
        assert big_counters.misses <= small_counters.misses

    def test_replay_close_to_execution_driven(self):
        """Replaying a 1-cluster trace on the same configuration must give
        identical miss counts (no timing feedback to disagree about)."""
        cfg, app, tm, result = record_ocean()
        counters = replay(tm.trace(), CoherentMemorySystem(
            cfg, _fresh_allocator(app, cfg)))
        assert counters.read_misses == pytest.approx(
            result.misses.read_misses, rel=0.02)


def _fresh_allocator(app, cfg):
    """Rebuild the app's page placements for a fresh memory system."""
    rebuilt = build_app("ocean", cfg, n=16, n_vcycles=1)
    rebuilt.ensure_setup()
    return rebuilt.allocator
