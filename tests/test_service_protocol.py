"""Wire-format tests: codec round-trips, strict validation, clean 400s.

Two layers of round-trip coverage: pure in-process codec inverses
(hypothesis-generated :class:`RunRequest`\\ s through
``decode(encode(r)) == r``), and full wire trips through the running
daemon's ``/resolve`` endpoint — client encoding, HTTP framing, server
decoding, and re-encoding all have to agree.

Malformed payloads must come back as HTTP 400 with a structured
``{"error": ...}`` body and never leak a traceback.
"""

import http.client
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import APP_NAMES
from repro.core.config import PROTOCOLS, NetworkConfig
from repro.core.metrics import RunResult
from repro.runtime import RunRequest
from repro.service.protocol import (PointReport, ProtocolError,
                                    decode_point_payload,
                                    decode_run_request,
                                    decode_sweep_payload,
                                    encode_point_payload,
                                    encode_run_request,
                                    encode_sweep_payload, error_body)

# --------------------------------------------------------------- strategies
networks = st.one_of(
    st.none(),
    st.builds(NetworkConfig,
              provider=st.sampled_from(["table", "mesh"]),
              topology=st.sampled_from(["mesh", "crossbar"]),
              wire_cycles=st.integers(0, 4),
              router_cycles=st.integers(1, 4),
              directory_cycles=st.integers(1, 12),
              background_load=st.sampled_from([0.0, 0.25, 0.5, 0.8]),
              contention=st.booleans()))

kwargs_values = st.one_of(st.integers(-1000, 1000), st.booleans(),
                          st.floats(-1e6, 1e6, allow_nan=False),
                          st.text(max_size=12))

requests = st.builds(
    RunRequest.make,
    app=st.sampled_from(APP_NAMES),
    cluster_size=st.sampled_from([1, 2, 4, 8]),
    cache_kb=st.one_of(st.none(), st.integers(1, 1024),
                       st.sampled_from([0.5, 4.0, 16.0, 32.0])),
    app_kwargs=st.dictionaries(
        st.text(st.characters(categories=("Ll",)), min_size=1, max_size=8),
        kwargs_values, max_size=4),
    network=networks,
    protocol=st.one_of(st.none(), st.sampled_from(PROTOCOLS)))


class TestCodecRoundTrip:
    @given(request=requests)
    @settings(max_examples=80, deadline=None)
    def test_run_request_round_trips(self, request):
        wire = encode_run_request(request)
        # the wire form must survive real JSON serialization
        assert decode_run_request(json.loads(json.dumps(wire))) == request

    @given(request=requests,
           timeout=st.one_of(st.none(), st.floats(0.01, 100)))
    @settings(max_examples=40, deadline=None)
    def test_point_payload_round_trips(self, request, timeout):
        spec, decoded_timeout = decode_point_payload(
            json.loads(json.dumps(encode_point_payload(request, timeout))))
        assert spec == request
        assert decoded_timeout == (pytest.approx(timeout)
                                   if timeout is not None else None)

    @given(grid=st.lists(requests, min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_sweep_payload_round_trips(self, grid):
        specs, _ = decode_sweep_payload(
            json.loads(json.dumps(encode_sweep_payload(grid))))
        assert specs == grid

    def test_point_report_round_trips(self):
        from repro.core.metrics import MissCounters, TimeBreakdown

        breakdown = TimeBreakdown(cpu=100, load=13, merge=4, sync=6)
        misses = MissCounters(reads=10, writes=3)
        result = RunResult(execution_time=123, breakdown=breakdown,
                           per_processor=[breakdown],
                           misses=misses, per_cluster_misses=[misses])
        # the canonical JSON form must survive the trip too
        assert RunResult.from_json(result.to_json()).to_json() \
            == result.to_json()
        report = PointReport("k" * 64, result, cached=True, elapsed=0.5)
        back = PointReport.from_dict(json.loads(
            json.dumps(report.to_dict())))
        assert back == report
        assert back.as_coalesced().coalesced is True

    def test_error_body_shape(self):
        body = error_body("bad-request", "nope")
        assert body == {"error": {"type": "bad-request", "message": "nope"}}


class TestStrictValidation:
    @pytest.mark.parametrize("payload,needle", [
        (42, "JSON object"),
        ({"app": ""}, "'app'"),
        ({"app": 7}, "'app'"),
        ({"app": "lu", "cluster_size": "two"}, "'cluster_size'"),
        ({"app": "lu", "cluster_size": True}, "'cluster_size'"),
        ({"app": "lu", "cluster_size": 0}, "'cluster_size'"),
        ({"app": "lu", "cache_kb": "big"}, "'cache_kb'"),
        ({"app": "lu", "cache_kb": -4}, "'cache_kb'"),
        ({"app": "lu", "app_kwargs": [1, 2]}, "'app_kwargs'"),
        ({"app": "lu", "app_kwargs": {"n": [1]}}, "'app_kwargs'"),
        ({"app": "lu", "network": "mesh"}, "'network'"),
        ({"app": "lu", "network": {"provider": "warp"}}, "network"),
        ({"app": "lu", "network": {"providr": "mesh"}}, "network"),
        ({"app": "lu", "protocol": "mesiv2"}, "'protocol'"),
        ({"app": "lu", "protocol": 3}, "'protocol'"),
        ({"app": "lu", "frobnicate": 1}, "unknown request field"),
    ])
    def test_bad_requests_raise_protocol_errors(self, payload, needle):
        with pytest.raises(ProtocolError) as excinfo:
            decode_run_request(payload)
        assert needle in str(excinfo.value)

    @pytest.mark.parametrize("payload,needle", [
        ([], "JSON object"),
        ({}, "missing 'request'"),
        ({"request": {"app": "lu"}, "timeout": 0}, "'timeout'"),
        ({"request": {"app": "lu"}, "timeout": "fast"}, "'timeout'"),
        ({"request": {"app": "lu"}, "extra": 1}, "unknown payload field"),
    ])
    def test_bad_point_payloads(self, payload, needle):
        with pytest.raises(ProtocolError) as excinfo:
            decode_point_payload(payload)
        assert needle in str(excinfo.value)

    @pytest.mark.parametrize("payload,needle", [
        ({"requests": []}, "non-empty"),
        ({"requests": {"app": "lu"}}, "non-empty JSON array"),
        ({}, "non-empty"),
    ])
    def test_bad_sweep_payloads(self, payload, needle):
        with pytest.raises(ProtocolError) as excinfo:
            decode_sweep_payload(payload)
        assert needle in str(excinfo.value)


class TestWireTripsThroughTheDaemon:
    @given(request=requests.filter(
        lambda r: 8 % r.cluster_size == 0))  # fixture daemon has 8 procs
    @settings(max_examples=25, deadline=None)
    def test_resolve_round_trips_client_to_server_and_back(
            self, serve_daemon, request):
        with serve_daemon.client() as client:
            resolved = client.resolve(request)
        assert decode_run_request(resolved["request"]) == request
        assert len(resolved["key"]) == 64
        assert resolved["config"]["cluster_size"] == request.cluster_size

    def test_malformed_json_body_is_a_400_without_traceback(
            self, serve_daemon):
        conn = http.client.HTTPConnection(serve_daemon.host,
                                          serve_daemon.port, timeout=30)
        try:
            conn.request("POST", "/run", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 400
        payload = json.loads(body)
        assert payload["error"]["type"] == "bad-request"
        assert "Traceback" not in body

    @pytest.mark.parametrize("payload", [
        {"request": {"app": "lu", "cluster_size": -1}},
        {"request": {"app": "lu", "bogus": True}},
        {"requests": "all of them"},
        {"request": {"app": "not-an-app"}},
        {"request": {"app": "lu", "cluster_size": 3}},  # 3 ∤ 8 processors
    ])
    def test_semantically_bad_payloads_are_400s(self, serve_daemon, payload):
        with serve_daemon.client() as client:
            conn = http.client.HTTPConnection(serve_daemon.host,
                                              serve_daemon.port, timeout=30)
            try:
                path = "/sweep" if "requests" in payload else "/run"
                conn.request("POST", path,
                             body=json.dumps(payload).encode("utf-8"),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                body = response.read().decode("utf-8")
            finally:
                conn.close()
            assert response.status == 400, body
            assert json.loads(body)["error"]["type"] == "bad-request"
            assert "Traceback" not in body
            # a bad request never poisons the daemon
            assert client.healthz()["status"] == "ok"

    def test_unknown_path_is_404_and_wrong_method_is_405(self, serve_daemon):
        conn = http.client.HTTPConnection(serve_daemon.host,
                                          serve_daemon.port, timeout=30)
        try:
            conn.request("GET", "/no/such/endpoint")
            response = conn.getresponse()
            assert response.status == 404
            assert json.loads(response.read())["error"]["type"] == "not-found"
            conn.request("GET", "/run")
            response = conn.getresponse()
            assert response.status == 405
            payload = json.loads(response.read())
            assert payload["error"]["type"] == "method-not-allowed"
        finally:
            conn.close()
