"""The §4 pushout study: tiers, pipeline routing, shapes, CLI.

``test_export_scaling.py`` pins the long-standing public surface
(curves, ``effective_processors``, ``pushout``).  This file covers what
the study layer added on top: tier presets for every application,
routing through the canonical RunSession pipeline (trace-cache sharing
between the clustered and unclustered curves), ``scaling_study`` /
``compare_shapes``, the rendered figures, and the ``scaling``
subcommand's exit-code contract.
"""

import json

import pytest

from repro.analysis.figures import render_scaling, render_shape_comparison
from repro.apps.registry import APP_NAMES
from repro.cli import main
from repro.core.resultcache import ResultCache
from repro.core.scaling import (MEDIUM_PROBLEM_SIZES, SCALING_TIERS,
                                compare_shapes, pushout, scaling_curve,
                                scaling_problem, scaling_processor_counts,
                                scaling_study)
from repro.sim.compiled import TraceCache, clear_memory_cache

TINY = {"n": 32, "block": 8}
COUNTS = (4, 8)


class TestTierPresets:
    @pytest.mark.parametrize("tier", SCALING_TIERS)
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_every_app_has_every_tier(self, app, tier):
        problem = scaling_problem(app, tier)
        assert isinstance(problem, dict) and problem

    def test_medium_sits_between_quick_and_paper(self):
        # spot-check the headline scale parameter of two grid apps
        from repro.apps.registry import (PAPER_PROBLEM_SIZES,
                                         QUICK_PROBLEM_SIZES)
        for app, key in (("lu", "n"), ("ocean", "n"), ("fft", "n_points")):
            assert QUICK_PROBLEM_SIZES[app][key] \
                <= MEDIUM_PROBLEM_SIZES[app][key] \
                <= PAPER_PROBLEM_SIZES[app][key]

    def test_processor_count_grids(self):
        for tier in SCALING_TIERS:
            counts = scaling_processor_counts(tier)
            assert counts == tuple(sorted(counts))
            assert all(c % 8 == 0 for c in counts)
        assert max(scaling_processor_counts("paper")) \
            > max(scaling_processor_counts("quick"))

    def test_unknown_tier_and_app_raise(self):
        with pytest.raises(ValueError, match="tier"):
            scaling_problem("lu", "enormous")
        with pytest.raises(ValueError, match="application"):
            scaling_problem("linpack", "quick")
        with pytest.raises(ValueError, match="tier"):
            scaling_processor_counts("enormous")

    def test_problem_copies_are_independent(self):
        scaling_problem("lu")["n"] = 7
        assert scaling_problem("lu")["n"] != 7


class TestPipelineRouting:
    def test_curves_share_the_trace_cache(self):
        """Both pushout curves replay one capture per processor count."""
        clear_memory_cache()
        cache = TraceCache()
        pushout("lu", COUNTS, 2, None, TINY, trace_cache=cache)
        # 2 counts x 2 curves = 4 lookups; the clustered curve's two are
        # hits because lu's trace key is cluster-size-independent
        assert cache.misses == len(COUNTS)
        assert cache.memory_hits == len(COUNTS)
        clear_memory_cache()

    def test_result_cache_memoizes_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = scaling_curve("lu", COUNTS, 1, app_kwargs=TINY,
                              result_cache=cache)
        again = scaling_curve("lu", COUNTS, 1, app_kwargs=TINY,
                              result_cache=cache)
        assert [p.execution_time for p in first.points] \
            == [p.execution_time for p in again.points]
        assert cache.hits == len(COUNTS)

    def test_seed_changes_the_problem_not_the_api(self):
        a = scaling_curve("lu", COUNTS, 1, app_kwargs=TINY)
        b = scaling_curve("lu", COUNTS, 1, app_kwargs=TINY, seed=99)
        assert [p.n_processors for p in a.points] \
            == [p.n_processors for p in b.points]


class TestStudyAndShapes:
    def test_study_structure(self):
        study = scaling_study("lu", "quick", cluster_size=2,
                              processor_counts=COUNTS)
        for key in ("app", "cluster_size", "processor_counts",
                    "speedups_unclustered", "speedups_clustered",
                    "effective_unclustered", "effective_clustered",
                    "tier", "problem", "cache_kb", "marginal_threshold"):
            assert key in study
        assert study["tier"] == "quick"
        assert study["processor_counts"] == sorted(COUNTS)

    def test_raytrace_quick_pushout(self):
        """The paper's claim holds at quick scale: clustering pushes the
        effective processor count out (strictly, for raytrace at 4 KB)."""
        study = scaling_study("raytrace", "quick", cluster_size=4,
                              cache_kb=4.0)
        assert study["effective_clustered"] > study["effective_unclustered"]

    def test_compare_shapes_identity_and_disjoint(self):
        speedups = {8: 1.0, 16: 1.8, 32: 2.5}
        cmp = compare_shapes(speedups, speedups)
        assert cmp["max_divergence"] == 0.0
        assert cmp["processor_counts"] == [8, 16, 32]
        with pytest.raises(ValueError):
            compare_shapes({8: 1.0}, {16: 1.0})

    def test_compare_shapes_normalises_magnitude_away(self):
        a = {8: 1.0, 16: 2.0}
        b = {8: 10.0, 16: 20.0}  # same shape, 10x the magnitude
        assert compare_shapes(a, b)["max_divergence"] == 0.0

    def test_render_scaling_and_shapes(self):
        study = scaling_study("lu", "quick", cluster_size=2,
                              processor_counts=COUNTS)
        text = render_scaling(study)
        assert "lu" in text and "pushout" in text
        for count in COUNTS:
            assert f"\n{count:>6}" in text
        cmp = compare_shapes(study["speedups_clustered"],
                             study["speedups_unclustered"])
        rendered = render_shape_comparison(cmp, "clustered", "flat")
        assert "max shape divergence" in rendered


class TestScalingCLI:
    def test_exit_code_matches_pushout_verdict(self, tmp_path, capsys):
        figure = tmp_path / "fig.txt"
        out = tmp_path / "study.json"
        rc = main(["scaling", "lu", "--counts", "4,8", "--clusters", "2",
                   "--no-cache", "--figure", str(figure),
                   "--json", str(out)])
        study = scaling_study("lu", "quick", cluster_size=2,
                              processor_counts=(4, 8))
        expect = 0 if study["effective_clustered"] \
            >= study["effective_unclustered"] else 1
        assert rc == expect
        assert "pushout" in figure.read_text(encoding="utf-8")
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload[0]["app"] == "lu"
        assert payload[0]["speedups_clustered"] \
            == {str(k): v for k, v in study["speedups_clustered"].items()}

    def test_indivisible_counts_exit_2(self, capsys):
        rc = main(["scaling", "lu", "--counts", "4,10", "--no-cache"])
        assert rc == 2
        assert "does not divide" in capsys.readouterr().err

    def test_compare_tier_writes_shape_section(self, tmp_path, capsys):
        figure = tmp_path / "fig.txt"
        rc = main(["scaling", "lu", "--counts", "4,8", "--clusters", "2",
                   "--compare-tier", "quick", "--no-cache",
                   "--figure", str(figure)])
        assert rc in (0, 1)
        text = figure.read_text(encoding="utf-8")
        assert "max shape divergence: 0.000" in text  # same tier twice
