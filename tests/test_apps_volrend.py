"""Volrend application tests: compositing, octree skipping, image sanity."""

import numpy as np
import pytest

from repro.apps.volrend import VolrendApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=16)


class TestVolume:
    def test_head_structure(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        app.ensure_setup()
        n = app.nv
        # centre voxel is brain, corner is empty
        assert app.volume[n // 2, n // 2, n // 2] > 0.2
        assert app.volume[0, 0, 0] == 0.0

    def test_minmax_pyramid_consistent(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8, block=4)
        app.ensure_setup()
        assert app.minmax[0].max() == pytest.approx(app.volume.max())
        for lo, hi in zip(app.minmax, app.minmax[1:]):
            assert hi.max() == pytest.approx(lo.max())

    def test_block_must_divide(self, cfg):
        with pytest.raises(ValueError):
            VolrendApp(cfg, volume_side=30, block=4)


class TestRendering:
    def test_octree_skipping_preserves_image(self, cfg):
        """Hierarchical skipping is an optimisation only: the composited
        intensity must equal the brute-force march."""
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        app.ensure_setup()
        for px, py in [(0, 0), (4, 4), (3, 6), (7, 2)]:
            with_tree, _ = app.march(px, py, use_octree=True)
            brute, _ = app.march(px, py, use_octree=False)
            assert with_tree == pytest.approx(brute, rel=1e-12)

    def test_octree_reduces_voxel_reads(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        app.ensure_setup()
        _, t_tree = app.march(0, 0, use_octree=True)
        _, t_brute = app.march(0, 0, use_octree=False)
        voxels_tree = sum(1 for k, _ in t_tree if k == "voxel")
        voxels_brute = sum(1 for k, _ in t_brute if k == "voxel")
        assert voxels_tree < voxels_brute

    def test_centre_opaque_corner_clear(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        app.run()
        h, w = app.image.shape
        assert app.image[h // 2, w // 2] > 0.1
        assert app.image[0, 0] == 0.0

    def test_image_deterministic_across_clustering(self):
        imgs = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=4, cluster_size=cluster)
            app = VolrendApp(cfg, volume_side=16, width=8, height=8)
            app.run()
            imgs.append(app.image.copy())
        assert np.array_equal(imgs[0], imgs[1])

    def test_early_termination_bounds_opacity_work(self, cfg):
        """A ray through the centre must stop before the far face (the
        skull/brain saturate opacity)."""
        app = VolrendApp(cfg, volume_side=32, width=8, height=8)
        app.ensure_setup()
        _, trace = app.march(4, 4)
        # trilinear sampling reads 4 voxel columns per sample step
        sample_steps = sum(1 for k, _ in trace if k == "voxel") / 4
        assert sample_steps < app.nv  # terminated early


class TestStructure:
    def test_pixel_tiles_complete(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        elems = {app._pixel_elem(y, x) for y in range(8) for x in range(8)}
        assert elems == set(range(64))

    def test_volume_mostly_read_only(self, cfg):
        """Coherence traffic limited to the tile queue + pixel false
        sharing — a small share of all misses."""
        from repro.core.metrics import MissCause
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        res = app.run()
        coher = res.misses.by_cause[MissCause.COHERENCE]
        assert coher < 0.3 * max(res.misses.misses, 1)

    def test_volume_pages_interleaved(self, cfg):
        app = VolrendApp(cfg, volume_side=16, width=8, height=8)
        app.ensure_setup()
        first = app.rvolume.base // cfg.page_size
        homes = {app.allocator.bound_home(first + k) for k in range(4)}
        assert len(homes) > 1
