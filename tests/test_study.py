"""Tests for the sweep driver and the paper's normalization."""

import pytest

from repro.core.config import MachineConfig
from repro.core.study import (ClusteringStudy, cache_label, normalize_sweep)

CFG = MachineConfig(n_processors=8)
KW = {"n": 16, "n_vcycles": 1}  # tiny ocean


@pytest.fixture(scope="module")
def cluster_sweep():
    study = ClusteringStudy("ocean", CFG, dict(KW))
    return study.cluster_sweep(cache_kb=None, cluster_sizes=(1, 2, 4))


@pytest.fixture(scope="module")
def capacity_sweep():
    study = ClusteringStudy("ocean", CFG, dict(KW))
    return study.capacity_sweep(cache_sizes=(1, None), cluster_sizes=(1, 2))


class TestClusterSweep:
    def test_all_points_present(self, cluster_sweep):
        assert set(cluster_sweep) == {1, 2, 4}

    def test_points_tagged(self, cluster_sweep):
        p = cluster_sweep[2]
        assert p.app == "ocean"
        assert p.cluster_size == 2
        assert p.cache_kb is None
        assert p.execution_time == p.result.execution_time

    def test_same_problem_each_point(self, cluster_sweep):
        # identical reference counts: the same computation ran in every
        # configuration (modulo barrier ops which emit no references)
        refs = {c: p.result.misses.references for c, p in
                cluster_sweep.items()}
        assert len(set(refs.values())) == 1


class TestNormalization:
    def test_baseline_is_100(self, cluster_sweep):
        norm = normalize_sweep(cluster_sweep)
        assert norm[1]["total"] == pytest.approx(100.0)

    def test_components_sum_to_total(self, cluster_sweep):
        norm = normalize_sweep(cluster_sweep)
        for v in norm.values():
            s = v["cpu"] + v["load"] + v["merge"] + v["sync"]
            assert s == pytest.approx(v["total"], abs=0.2)

    def test_capacity_normalized_per_cache_size(self, capacity_sweep):
        norm = normalize_sweep(capacity_sweep)
        assert norm[(1, 1)]["total"] == pytest.approx(100.0)
        assert norm[(None, 1)]["total"] == pytest.approx(100.0)

    def test_missing_baseline_raises(self, cluster_sweep):
        partial = {c: p for c, p in cluster_sweep.items() if c != 1}
        with pytest.raises(ValueError, match="baseline"):
            normalize_sweep(partial)

    def test_empty_sweep(self):
        assert normalize_sweep({}) == {}


class TestCacheLabel:
    def test_labels(self):
        assert cache_label(None) == "inf"
        assert cache_label(4) == "4k"
        assert cache_label(16.0) == "16k"
        assert cache_label(0.5) == "0.5k"
