"""Extra rendering-layer tests: ASCII charts, series extraction, and
capacity-figure layout details."""

import pytest

from repro.analysis.figures import (Bar, BarGroup, FigureData, render_ascii,
                                    render_rows)


def synth_figure() -> FigureData:
    """Hand-built figure resembling a two-cache-size capacity sweep."""
    g1 = BarGroup(label="4k", bars=[
        Bar("1p", cpu=50.0, load=30.0, merge=0.0, sync=20.0),
        Bar("8p", cpu=50.0, load=10.0, merge=5.0, sync=15.0),
    ])
    g2 = BarGroup(label="inf", bars=[
        Bar("1p", cpu=70.0, load=15.0, merge=0.0, sync=15.0),
        Bar("8p", cpu=70.0, load=8.0, merge=2.0, sync=12.0),
    ])
    return FigureData(title="synthetic", groups=[g1, g2])


class TestBar:
    def test_total(self):
        b = Bar("x", 1.0, 2.0, 3.0, 4.0)
        assert b.total == 10.0

    def test_component_accessor(self):
        b = Bar("x", 1.0, 2.0, 3.0, 4.0)
        assert b.component("load") == 2.0
        with pytest.raises(AttributeError):
            b.component("nonsense")


class TestFigureData:
    def test_bar_lookup_by_group(self):
        fig = synth_figure()
        assert fig.bar("4k", "8p").total == 80.0
        assert fig.bar("inf", "1p").total == 100.0

    def test_bar_lookup_missing(self):
        with pytest.raises(KeyError):
            synth_figure().bar("32k", "1p")

    def test_series_totals(self):
        series = synth_figure().series()
        assert series["4k"] == [100.0, 80.0]
        assert series["inf"] == [100.0, 92.0]

    def test_series_component(self):
        series = synth_figure().series("merge")
        assert series["4k"] == [0.0, 5.0]


class TestRenderRows:
    def test_every_bar_present(self):
        text = render_rows(synth_figure())
        assert text.count("1p") == 2
        assert text.count("8p") == 2
        assert "synthetic" in text

    def test_numbers_formatted(self):
        text = render_rows(synth_figure())
        assert "100.0" in text
        assert "80.0" in text


class TestRenderAscii:
    def test_glyphs_and_legend(self):
        art = render_ascii(synth_figure())
        for glyph in "#=~.":
            assert glyph in art
        assert "#=cpu" in art

    def test_group_labels_in_axis(self):
        art = render_ascii(synth_figure())
        assert "4k:1p" in art
        assert "inf:8p" in art

    def test_height_scales(self):
        short = render_ascii(synth_figure(), height=10)
        tall = render_ascii(synth_figure(), height=40)
        assert len(tall.splitlines()) > len(short.splitlines())

    def test_empty_figure(self):
        art = render_ascii(FigureData(title="empty"))
        assert "empty" in art

    def test_bars_roughly_proportional(self):
        art = render_ascii(synth_figure(), height=20)
        # the 100-total column must be visibly taller than the 80-total one
        lines = art.splitlines()
        col_heights = {}
        labels = lines[-2]
        for label in ("4k:1p", "4k:8p"):
            pos = labels.index(label) + len(label) // 2
            col_heights[label] = sum(
                1 for ln in lines[2:-2] if pos < len(ln) and ln[pos] != " ")
        assert col_heights["4k:1p"] > col_heights["4k:8p"]
