"""Unit tests for first-touch round-robin page placement."""

import pytest

from repro.memory.address import Region
from repro.memory.allocation import PageAllocator

LINES_PER_PAGE = 4096 // 64


class TestFirstTouch:
    def test_round_robin_order(self):
        al = PageAllocator(n_clusters=4)
        homes = [al.home_of_line(p * LINES_PER_PAGE) for p in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_page_same_home(self):
        al = PageAllocator(n_clusters=4)
        h = al.home_of_line(0)
        assert al.home_of_line(1) == h
        assert al.home_of_line(LINES_PER_PAGE - 1) == h

    def test_next_page_next_cluster(self):
        al = PageAllocator(n_clusters=4)
        h0 = al.home_of_line(0)
        h1 = al.home_of_line(LINES_PER_PAGE)
        assert h1 == (h0 + 1) % 4

    def test_repeat_touch_stable(self):
        al = PageAllocator(n_clusters=4)
        assert al.home_of_line(5) == al.home_of_line(5)

    def test_touch_order_determines_home(self):
        al = PageAllocator(n_clusters=2)
        # touch page 7 first: it gets cluster 0 even though 7 % 2 == 1
        assert al.home_of_line(7 * LINES_PER_PAGE) == 0
        assert al.home_of_line(0) == 1

    def test_counts_first_touches(self):
        al = PageAllocator(n_clusters=2)
        al.home_of_line(0)
        al.home_of_line(1)  # same page
        al.home_of_line(LINES_PER_PAGE)
        assert al.first_touch_pages == 2


class TestExplicitPlacement:
    def test_place_page_overrides_round_robin(self):
        al = PageAllocator(n_clusters=4)
        al.place_page(0, 3)
        assert al.home_of_line(0) == 3
        # round-robin pointer untouched by placement
        assert al.home_of_line(LINES_PER_PAGE) == 0

    def test_place_after_touch_rejected(self):
        al = PageAllocator(n_clusters=4)
        al.home_of_line(0)
        with pytest.raises(ValueError):
            al.place_page(0, 2)

    def test_place_range_spans_pages(self):
        al = PageAllocator(n_clusters=4)
        al.place_range(0, 4096 * 3, 2)
        for page in range(3):
            assert al.home_of_line(page * LINES_PER_PAGE) == 2

    def test_place_range_skips_bound_pages(self):
        al = PageAllocator(n_clusters=4)
        al.place_page(1, 3)
        al.place_range(0, 4096 * 2, 1)  # covers pages 0 and 1
        assert al.bound_home(0) == 1
        assert al.bound_home(1) == 3  # untouched

    def test_place_range_empty(self):
        al = PageAllocator(n_clusters=2)
        al.place_range(0, 0, 1)
        assert al.pages_bound == 0

    def test_place_region(self):
        al = PageAllocator(n_clusters=2)
        r = Region("r", base=8192, size=4096)
        al.place_region(r, 1)
        assert al.home_of_line(8192 // 64) == 1

    def test_place_region_blocked_cycles_clusters(self):
        al = PageAllocator(n_clusters=2)
        r = Region("r", base=0, size=4096 * 4)
        al.place_region_blocked(r, 4)
        homes = [al.bound_home(p) for p in range(4)]
        assert homes == [0, 1, 0, 1]

    def test_place_region_blocked_degenerate(self):
        al = PageAllocator(n_clusters=2)
        r = Region("r", base=0, size=4096)
        al.place_region_blocked(r, 100)  # partitions smaller than a page
        assert al.bound_home(0) == 0

    def test_make_stack_local(self):
        al = PageAllocator(n_clusters=4)
        al.make_stack(processor=5, cluster=2, base=10 * 4096, size=8192)
        assert al.home_of_line(10 * LINES_PER_PAGE) == 2
        assert al.home_of_line(11 * LINES_PER_PAGE) == 2

    def test_invalid_cluster_rejected(self):
        al = PageAllocator(n_clusters=2)
        with pytest.raises(ValueError):
            al.place_page(0, 2)
        with pytest.raises(ValueError):
            al.place_range(0, 4096, -1)


class TestQueries:
    def test_bound_home_no_side_effect(self):
        al = PageAllocator(n_clusters=2)
        assert al.bound_home(0) is None
        assert al.pages_bound == 0

    def test_home_histogram(self):
        al = PageAllocator(n_clusters=3)
        for p in range(6):
            al.home_of_line(p * LINES_PER_PAGE)
        assert al.home_histogram() == [2, 2, 2]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PageAllocator(n_clusters=0)
        with pytest.raises(ValueError):
            PageAllocator(n_clusters=2, page_size=100, line_size=64)
