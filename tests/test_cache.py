"""Unit tests for the slab-allocated fully associative and set-associative
cluster caches (slot-based API over flat array('q') columns)."""

import pytest

from repro.memory.cache import (EXCLUSIVE, SHARED, FullyAssociativeCache,
                                SetAssociativeCache, make_cache)


class TestFullyAssociativeBasics:
    def test_miss_then_hit(self):
        c = FullyAssociativeCache(4)
        assert c.lookup(1) == -1
        c.insert(1, SHARED)
        slot = c.lookup(1)
        assert slot >= 0
        assert c.state[slot] == SHARED

    def test_capacity_enforced(self):
        c = FullyAssociativeCache(2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        victim = c.insert(3, SHARED)
        assert victim is not None
        assert len(c) == 2

    def test_lru_victim_is_least_recent(self):
        c = FullyAssociativeCache(2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        c.lookup(1)  # 2 becomes LRU
        victim = c.insert(3, SHARED)
        assert victim.line == 2

    def test_peek_does_not_touch_lru(self):
        c = FullyAssociativeCache(2)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        c.peek(1)  # must NOT refresh line 1
        victim = c.insert(3, SHARED)
        assert victim.line == 1

    def test_double_insert_rejected(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED)
        with pytest.raises(ValueError):
            c.insert(1, EXCLUSIVE)

    def test_invalidate(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED)
        assert c.invalidate(1) is True
        assert c.invalidate(1) is False
        assert 1 not in c

    def test_invalidate_pending_line(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED, pending_until=100)
        assert c.invalidate(1) is True

    def test_downgrade(self):
        c = FullyAssociativeCache(4)
        c.insert(1, EXCLUSIVE)
        c.downgrade(1)
        assert c.state_of(1) == SHARED

    def test_downgrade_missing_line_raises(self):
        c = FullyAssociativeCache(4)
        with pytest.raises(KeyError):
            c.downgrade(7)

    def test_victim_state_reported(self):
        c = FullyAssociativeCache(1)
        c.insert(1, EXCLUSIVE)
        victim = c.insert(2, SHARED)
        assert victim.state == EXCLUSIVE

    def test_eviction_counter(self):
        c = FullyAssociativeCache(1)
        c.insert(1, SHARED)
        c.insert(2, SHARED)
        c.insert(3, SHARED)
        assert c.evictions == 2
        assert c.inserts == 3


class TestSlabColumns:
    """The flat-column state layout specifics."""

    def test_finite_columns_preallocated(self):
        c = FullyAssociativeCache(8)
        assert len(c.state) == 8
        assert len(c.pending) == 8
        assert len(c.fetcher) == 8
        assert len(c.tag) == 8
        assert len(c.free) == 8

    def test_tag_column_names_resident_line(self):
        c = FullyAssociativeCache(4)
        c.insert(42, SHARED)
        slot = c.peek(42)
        assert c.tag[slot] == 42

    def test_fetcher_cell(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED, fetcher=7)
        slot = c.peek(1)
        assert c.fetcher_of(1) == 7
        assert c.fetcher[slot] == 7
        c.fetcher[slot] = -1  # protocol layer marks the prefetch counted
        assert c.fetcher_of(1) == -1

    def test_invalidate_recycles_slot(self):
        c = FullyAssociativeCache(2)
        c.insert(1, SHARED)
        slot = c.peek(1)
        c.invalidate(1)
        assert slot in c.free
        c.insert(2, SHARED)
        c.insert(3, SHARED)
        assert len(c) == 2  # recycled slot reused, no overflow

    def test_eviction_reuses_victim_slot(self):
        c = FullyAssociativeCache(1)
        c.insert(1, SHARED)
        slot = c.peek(1)
        c.insert(2, EXCLUSIVE)
        assert c.peek(2) == slot

    def test_slot_accounting_balances(self):
        c = FullyAssociativeCache(4)
        for line in range(10):
            c.insert(line, SHARED)
            if line % 3 == 0:
                c.invalidate(line)
        assert len(c.slot_of) + len(c.free) == len(c.state)

    def test_infinite_growth_preserves_column_identity(self):
        c = FullyAssociativeCache(None)
        state_col = c.state  # bound before any growth, like the kernel does
        pending_col = c.pending
        fetcher_col = c.fetcher
        for line in range(5000):  # forces several in-place extensions
            c.insert(line, SHARED, pending_until=line)
        assert state_col is c.state
        assert pending_col is c.pending
        assert fetcher_col is c.fetcher
        assert pending_col[c.peek(4999)] == 4999

    def test_pending_until_of(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED, pending_until=50)
        assert c.pending_until_of(1) == 50
        assert c.pending_until_of(9) is None


class TestPending:
    def test_pending_until_future(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED, pending_until=50)
        assert c.pending[c.lookup(1)] > 10
        assert not c.pending[c.lookup(1)] > 50
        assert not c.pending[c.lookup(1)] > 51

    def test_default_not_pending(self):
        c = FullyAssociativeCache(4)
        c.insert(1, SHARED)
        assert not c.pending[c.lookup(1)] > 0


class TestInfiniteCache:
    def test_never_evicts(self):
        c = FullyAssociativeCache(None)
        for line in range(10_000):
            assert c.insert(line, SHARED) is None
        assert len(c) == 10_000
        assert c.is_infinite

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(0)


class TestSetAssociative:
    def test_set_conflict_evicts_within_set(self):
        # 4 lines, 2-way: sets {0,2,...} and {1,3,...}
        c = SetAssociativeCache(capacity_lines=4, associativity=2)
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        victim = c.insert(4, SHARED)  # third line mapping to set 0
        assert victim.line == 0
        assert 2 in c and 4 in c

    def test_no_cross_set_eviction(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        assert c.insert(1, SHARED) is None  # other set has room
        assert len(c) == 3

    def test_lru_within_set(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        c.lookup(0)
        assert c.insert(4, SHARED).line == 2

    def test_direct_mapped(self):
        c = SetAssociativeCache(4, 1)
        c.insert(0, SHARED)
        assert c.insert(4, SHARED).line == 0

    def test_capacity_divisibility_enforced(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(5, 2)

    def test_slots_stay_within_owning_set(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0, SHARED)   # set 0 owns slots 0..1
        c.insert(1, SHARED)   # set 1 owns slots 2..3
        assert c.peek(0) in (0, 1)
        assert c.peek(1) in (2, 3)

    def test_shared_api_surface(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0, EXCLUSIVE)
        c.downgrade(0)
        assert c.state_of(0) == SHARED
        assert c.peek(0) >= 0
        assert c.invalidate(0)
        assert not c.is_infinite

    def test_resident_lines(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0, SHARED)
        c.insert(1, SHARED)
        assert sorted(c.resident_lines()) == [0, 1]


class TestMakeCache:
    def test_none_assoc_gives_fully_associative(self):
        assert isinstance(make_cache(64, None), FullyAssociativeCache)

    def test_infinite_always_fully_associative(self):
        assert isinstance(make_cache(None, 4), FullyAssociativeCache)

    def test_assoc_gives_set_associative(self):
        c = make_cache(64, 4)
        assert isinstance(c, SetAssociativeCache)
        assert c.n_sets == 16

    def test_assoc_at_capacity_degrades_to_full(self):
        assert isinstance(make_cache(4, 8), FullyAssociativeCache)
