"""Property suite for the kernelized memory core.

Drives the slab/flat-array implementations (:mod:`repro.memory.cache`,
:mod:`repro.memory.directory`) and the retained object-per-line reference
implementations (:mod:`repro.memory.refmodel`) with identical random
streams, and requires identical observable behaviour: victim choice, LRU
order, states, pending times, fetcher metadata, and protocol counters.

Also holds the snoopy-vs-directory single-cluster equivalence check: with
one processor per cluster and a free bus, the snoopy organisation *is* the
shared-cache organisation, so both memory systems must produce the same
simulation result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import (EXCLUSIVE, SHARED, FullyAssociativeCache,
                                SetAssociativeCache)
from repro.memory.directory import DIR_EXCLUSIVE, Directory
from repro.memory.refmodel import (RefDirectory, RefFullyAssociativeCache,
                                   RefSetAssociativeCache)

# ---------------------------------------------------------------- caches

_LINES = st.integers(min_value=0, max_value=40)
_STATES = st.sampled_from([SHARED, EXCLUSIVE])

_cache_op = st.one_of(
    st.tuples(st.just("insert"), _LINES, _STATES,
              st.integers(min_value=0, max_value=500),
              st.integers(min_value=-1, max_value=7)),
    st.tuples(st.just("lookup"), _LINES),
    st.tuples(st.just("peek"), _LINES),
    st.tuples(st.just("invalidate"), _LINES),
    st.tuples(st.just("downgrade"), _LINES),
)


def _drive(flat, ref, ops):
    """Apply ``ops`` to both caches, asserting identical observables."""
    for op in ops:
        kind, line = op[0], op[1]
        if kind == "insert":
            _, _, state, pending, fetcher = op
            if line in ref:
                continue  # double insert raises in both; not interesting
            victim = flat.insert(line, state, pending, fetcher)
            ref_victim = ref.insert(line, state, pending, fetcher)
            assert (None if victim is None else tuple(victim)) == \
                (None if ref_victim is None else tuple(ref_victim))
        elif kind == "lookup":
            slot = flat.lookup(line)
            entry = ref.lookup(line)
            assert (slot >= 0) == (entry is not None)
        elif kind == "peek":
            assert (flat.peek(line) >= 0) == (ref.peek(line) is not None)
        elif kind == "invalidate":
            assert flat.invalidate(line) == ref.invalidate(line)
        elif kind == "downgrade":
            if line not in ref:
                continue  # raises KeyError in both
            flat.downgrade(line)
            ref.downgrade(line)
        # full state equivalence after every step: same resident lines in
        # the same (LRU) order, same per-line metadata, same counters
        assert flat.resident_lines() == ref.resident_lines()
        assert len(flat) == len(ref)
        for resident in ref.resident_lines():
            entry = ref.peek(resident)
            assert flat.state_of(resident) == entry.state
            assert flat.pending_until_of(resident) == entry.pending_until
            assert flat.fetcher_of(resident) == entry.fetcher
        assert flat.evictions == ref.evictions
        assert flat.inserts == ref.inserts


@settings(max_examples=200, deadline=None)
@given(capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
       ops=st.lists(_cache_op, max_size=60))
def test_fully_associative_matches_reference(capacity, ops):
    _drive(FullyAssociativeCache(capacity), RefFullyAssociativeCache(capacity),
           ops)


@settings(max_examples=200, deadline=None)
@given(shape=st.sampled_from([(4, 1), (4, 2), (8, 2), (8, 4), (12, 3)]),
       ops=st.lists(_cache_op, max_size=60))
def test_set_associative_matches_reference(shape, ops):
    capacity, assoc = shape
    _drive(SetAssociativeCache(capacity, assoc),
           RefSetAssociativeCache(capacity, assoc), ops)


@settings(max_examples=100, deadline=None)
@given(ops=st.lists(_cache_op, max_size=200))
def test_infinite_cache_matches_reference(ops):
    _drive(FullyAssociativeCache(None), RefFullyAssociativeCache(None), ops)


# ------------------------------------------------------------- directory

_CLUSTERS = st.integers(min_value=0, max_value=7)

_dir_op = st.one_of(
    st.tuples(st.just("read_fill"), _LINES, _CLUSTERS),
    st.tuples(st.just("exclusive"), _LINES, _CLUSTERS),
    st.tuples(st.just("hint"), _LINES, _CLUSTERS),
    st.tuples(st.just("writeback"), _LINES, _CLUSTERS),
    st.tuples(st.just("downgrade"), _LINES, _CLUSTERS),
)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(_dir_op, max_size=80))
def test_packed_directory_matches_reference(ops):
    """The packed-int directory equals the reference's *live* entries.

    The reference keeps dead (NOT_CACHED, empty-mask) entries forever;
    the production table prunes them — so the comparison runs against
    ``live_lines()``, and ``hint`` ops are only sent for genuine sharers
    (as the protocol layer does: a replacement hint comes from a cluster
    that held the line).
    """
    flat = Directory(8)
    ref = RefDirectory(8)
    for kind, line, cluster in ops:
        entry = ref.peek(line)
        if kind == "read_fill":
            flat.record_read_fill(line, cluster)
            ref.record_read_fill(line, cluster)
        elif kind == "exclusive":
            assert flat.record_exclusive(line, cluster) == \
                ref.record_exclusive(line, cluster)
        elif kind == "hint":
            if entry is None or not entry.sharers:
                continue  # dead line: no cache can be evicting it
            flat.replacement_hint(line, cluster)
            ref.replacement_hint(line, cluster)
        elif kind == "writeback":
            flat.writeback(line, cluster)
            ref.writeback(line, cluster)
        elif kind == "downgrade":
            if entry is None or entry.state != DIR_EXCLUSIVE:
                continue  # raises in both
            flat.downgrade_owner(line, cluster)
            ref.downgrade_owner(line, cluster)
        # live-view equivalence after every step
        assert sorted(flat.lines()) == sorted(ref.live_lines())
        assert len(flat) == len(ref.live_lines())
        for live in ref.live_lines():
            e = ref.peek(live)
            assert flat.state_of(live) == e.state
            assert flat.sharer_mask(live) == e.sharers
            assert flat.sharer_list(live) == e.sharer_list()
            if e.state == DIR_EXCLUSIVE:
                assert flat.owner_of(live) == e.owner
        assert flat.invalidations_sent == ref.invalidations_sent
        assert flat.writebacks == ref.writebacks


def test_directory_prunes_dead_entries():
    """Streaming eviction traffic must not grow the table (satellite fix)."""
    d = Directory(4)
    for line in range(1000):
        d.record_read_fill(line, 0)
        d.replacement_hint(line, 0)
    assert len(d) == 0
    assert d.lines() == []
    for line in range(1000):
        d.record_exclusive(line, 1)
        d.writeback(line, 1)
    assert len(d) == 0


# ------------------------- snoopy vs directory, single-processor clusters

def test_snoopy_matches_directory_at_cluster_size_one():
    """With one processor per cluster and a free bus there is nothing to
    snoop: the snoopy organisation degenerates to the shared-cache one,
    and both memory systems must simulate identically."""
    from repro.apps.registry import build_app
    from repro.core.config import MachineConfig
    from repro.memory.coherence import CoherentMemorySystem
    from repro.memory.snoopy import SnoopyClusterMemorySystem
    from repro.sim.engine import Engine

    config = MachineConfig(n_processors=4, cluster_size=1,
                           cache_kb_per_processor=4.0)

    app = build_app("lu", config, n=32)
    app.ensure_setup()
    shared = Engine(config, CoherentMemorySystem(config, app.allocator)).run(
        app.program)

    app = build_app("lu", config, n=32)
    app.ensure_setup()
    snoopy_mem = SnoopyClusterMemorySystem(config, app.allocator,
                                           snoop_penalty=0)
    snoopy = Engine(config, snoopy_mem).run(app.program)

    assert snoopy_mem.c2c_transfers == 0
    assert snoopy.to_json() == shared.to_json()
