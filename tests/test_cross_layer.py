"""Cross-layer integration tests: trace replay across organisations,
snoopy-vs-shared-cache comparisons, and prefetch accounting end to end."""

import pytest

from repro.apps.registry import build_app
from repro.core.config import MachineConfig
from repro.core.metrics import MissCause
from repro.memory.coherence import CoherentMemorySystem
from repro.memory.snoopy import SnoopyClusterMemorySystem
from repro.sim.engine import Engine
from repro.sim.trace import TracingMemory, replay


def run_app_on(memory_cls, app_name, config, **kwargs):
    app = build_app(app_name, config, **kwargs)
    app.ensure_setup()
    mem = memory_cls(config, app.allocator)
    result = Engine(config, mem).run(app.program)
    return result, mem


class TestOrganisationComparison:
    @pytest.mark.parametrize("app,kwargs", [
        ("ocean", {"n": 16, "n_vcycles": 1}),
        ("radix", {"n_keys": 512, "radix": 16, "n_digits": 1}),
        ("mp3d", {"n_particles": 400, "n_steps": 1}),
    ])
    def test_both_organisations_complete(self, app, kwargs):
        cfg = MachineConfig(n_processors=8, cluster_size=4,
                            cache_kb_per_processor=4)
        shared, _ = run_app_on(CoherentMemorySystem, app, cfg, **kwargs)
        snoopy, mem = run_app_on(SnoopyClusterMemorySystem, app, cfg,
                                 **kwargs)
        assert shared.execution_time > 0
        assert snoopy.execution_time > 0
        mem.check_invariants()

    def test_shared_cache_pools_capacity(self):
        """At tiny caches, the shared cache's pooled capacity plus single
        shared copies must not lose badly to duplicated private caches on a
        read-shared workload."""
        cfg = MachineConfig(n_processors=8, cluster_size=4,
                            cache_kb_per_processor=0.5)
        kwargs = {"n_particles": 256, "n_steps": 1}
        shared, _ = run_app_on(CoherentMemorySystem, "barnes", cfg, **kwargs)
        snoopy, _ = run_app_on(SnoopyClusterMemorySystem, "barnes", cfg,
                               **kwargs)
        cap_shared = shared.misses.by_cause[MissCause.CAPACITY]
        cap_snoopy = snoopy.misses.by_cause[MissCause.CAPACITY]
        # the pooled organisation needs fewer capacity re-fetches of the
        # shared tree than 4 private caches thrashing separately
        assert cap_shared < cap_snoopy * 1.5

    def test_snoopy_c2c_happens_on_shared_data(self):
        cfg = MachineConfig(n_processors=8, cluster_size=4,
                            cache_kb_per_processor=8)
        _, mem = run_app_on(SnoopyClusterMemorySystem, "barnes", cfg,
                            n_particles=256, n_steps=1)
        assert mem.c2c_transfers > 0


class TestTraceAcrossOrganisations:
    def test_trace_from_shared_replays_on_snoopy(self):
        """A trace recorded on the shared-cache machine drives the snoopy
        organisation (classic trace-driven what-if)."""
        cfg = MachineConfig(n_processors=8, cluster_size=2,
                            cache_kb_per_processor=4)
        app = build_app("radix", cfg, n_keys=512, radix=16, n_digits=1)
        app.ensure_setup()
        tm = TracingMemory(CoherentMemorySystem(cfg, app.allocator))
        Engine(cfg, tm).run(app.program)

        fresh = build_app("radix", cfg, n_keys=512, radix=16, n_digits=1)
        fresh.ensure_setup()
        snoopy = SnoopyClusterMemorySystem(cfg, fresh.allocator)
        counters = replay(tm.trace(), snoopy)
        assert counters.references == len(tm.trace())
        snoopy.check_invariants()

    def test_replay_cluster_size_what_if(self):
        """Replay one trace against several cluster sizes: misses must not
        increase with larger shared caches (infinite capacity, more
        sharing captured)."""
        base = MachineConfig(n_processors=8, cluster_size=1)
        app = build_app("ocean", base, n=16, n_vcycles=1)
        app.ensure_setup()
        tm = TracingMemory(CoherentMemorySystem(base, app.allocator))
        Engine(base, tm).run(app.program)
        trace = tm.trace()

        misses = {}
        for cluster in (1, 2, 4, 8):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster)
            fresh = build_app("ocean", cfg, n=16, n_vcycles=1)
            fresh.ensure_setup()
            counters = replay(trace, CoherentMemorySystem(cfg,
                                                          fresh.allocator))
            misses[cluster] = counters.misses
        assert misses[2] <= misses[1]
        assert misses[4] <= misses[2]
        assert misses[8] <= misses[4]


class TestPrefetchAccounting:
    def test_prefetch_hits_bounded_by_hits(self):
        cfg = MachineConfig(n_processors=8, cluster_size=4,
                            cache_kb_per_processor=16)
        result, _ = run_app_on(CoherentMemorySystem, "fft", cfg,
                               n_points=1024)
        m = result.misses
        assert 0 <= m.prefetch_hits <= m.hits

    def test_prefetch_hits_reported_in_summary(self):
        from repro.sim.stats import summarize
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=8)
        result, _ = run_app_on(CoherentMemorySystem, "ocean", cfg,
                               n=16, n_vcycles=1)
        assert "prefetch" in summarize(result).format()
