"""End-to-end sweep-service daemon tests against the shared fixture.

The load-bearing guarantee: a result served over the daemon's HTTP API
is **byte-identical** to direct :class:`~repro.runtime.session.RunSession`
execution of the same :class:`~repro.runtime.plan.RunRequest` — the
daemon adds transport, memoization, and coalescing, never a second
execution semantics.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.resultcache import point_key
from repro.runtime import RunRequest, RunSession
from repro.sim.compiled import TraceCache

#: tiny problem sizes (mirrors the runtime parity suite's scale)
TINY = {
    "lu": dict(n=32, block=8),
    "fft": dict(n_points=256),
    "ocean": dict(n=16, n_vcycles=1),
    "radix": dict(n_keys=512, radix=16, n_digits=1),
    "barnes": dict(n_particles=64, n_steps=1),
}

#: the fixture daemon's machine template (tests/conftest.py)
CFG = MachineConfig(n_processors=8)

#: parity grid: ≥3 apps × 2 cluster sizes, one of them timing-dynamic
PARITY_APPS = ("ocean", "lu", "fft", "barnes")


def tiny_request(app: str, clusters: int = 2,
                 cache_kb: float | None = 4.0) -> RunRequest:
    return RunRequest.make(app, clusters, cache_kb, TINY[app])


class TestHealthAndStats:
    def test_healthz_reports_ok(self, serve_daemon):
        with serve_daemon.client() as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert health["in_flight"] == 0

    def test_stats_shape(self, serve_daemon):
        with serve_daemon.client() as client:
            stats = client.stats()
        for field in ("requests", "points", "executed", "cache_hits",
                      "cache_hit_rate", "coalesced", "errors", "timeouts",
                      "in_flight", "result_cache", "pool", "uptime_s",
                      "batch"):
            assert field in stats, f"/stats missing {field}"
        assert stats["pool"]["backend"] == "serial"
        assert stats["result_cache"] is not None  # fixture attaches a cache
        # the fixture daemon runs unbatched; the counters exist regardless
        assert stats["batch"]["enabled"] is False
        for counter in ("groups", "batched_points", "fallthrough_points",
                        "fused_points", "fallback_points",
                        "points_per_group"):
            assert counter in stats["batch"], f"batch stats missing {counter}"
        assert stats["batch"]["groups"] == 0


class TestPointParity:
    def test_daemon_results_match_direct_session_bytes(self, serve_daemon):
        """Daemon == RunSession for 4 apps × 2 cluster sizes, byte for byte."""
        session = RunSession(base_config=CFG, trace_cache=TraceCache())
        with serve_daemon.client() as client:
            for app in PARITY_APPS:
                for clusters in (1, 2):
                    request = tiny_request(app, clusters)
                    report = client.run_point(request)
                    direct = session.run(request)
                    assert report.result.to_json() == direct.to_json(), \
                        f"{app}/c{clusters}: daemon diverged from RunSession"

    def test_report_key_is_the_result_cache_key(self, serve_daemon):
        request = tiny_request("lu")
        with serve_daemon.client() as client:
            report = client.run_point(request)
        assert report.key == point_key("lu", TINY["lu"],
                                       request.config_for(CFG))

    def test_infinite_cache_point(self, serve_daemon):
        request = tiny_request("fft", clusters=4, cache_kb=None)
        with serve_daemon.client() as client:
            report = client.run_point(request)
        direct = RunSession(base_config=CFG,
                            trace_cache=TraceCache()).run(request)
        assert report.result.to_json() == direct.to_json()


class TestResultCacheServing:
    def test_repeat_request_is_served_from_the_result_cache(
            self, serve_daemon):
        # unique kwargs so no earlier test primed this key
        request = RunRequest.make("radix", 2, 16.0, TINY["radix"])
        with serve_daemon.client() as client:
            before = client.stats()
            first = client.run_point(request)
            second = client.run_point(request)
            after = client.stats()
        assert first.cached is False
        assert second.cached is True
        assert second.result.to_json() == first.result.to_json()
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["executed"] == before["executed"] + 1
        assert after["result_cache"]["hits"] >= 1

    def test_stats_expose_coalesced_and_hit_counters(self, serve_daemon):
        """/stats carries the counters the coalescing tests assert on."""
        with serve_daemon.client() as client:
            stats = client.stats()
        assert isinstance(stats["coalesced"], int)
        assert isinstance(stats["cache_hits"], int)
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0


class TestSweepStreaming:
    def test_sweep_streams_every_point(self, serve_daemon):
        grid = [RunRequest.make("lu", clusters, cache_kb, TINY["lu"])
                for clusters in (1, 2) for cache_kb in (4.0, None)]
        with serve_daemon.client() as client:
            lines = list(client.iter_sweep(grid))
        assert sorted(line["index"] for line in lines) == [0, 1, 2, 3]
        assert all("result" in line for line in lines)

    def test_run_sweep_orders_by_submission_and_matches_direct(
            self, serve_daemon):
        grid = [tiny_request("ocean", clusters) for clusters in (1, 2, 4)]
        with serve_daemon.client() as client:
            reports = client.run_sweep(grid)
        session = RunSession(base_config=CFG, trace_cache=TraceCache())
        assert len(reports) == len(grid)
        for request, report in zip(grid, reports):
            assert report.result.to_json() == session.run(request).to_json()

    def test_duplicate_points_in_one_sweep_agree(self, serve_daemon):
        request = tiny_request("fft")
        with serve_daemon.client() as client:
            reports = client.run_sweep([request, request, request])
        blobs = {report.result.to_json() for report in reports}
        assert len(blobs) == 1
        # duplicates never execute twice: they coalesce onto the flight
        # or hit the cache the first completion populated
        assert sum(1 for r in reports
                   if not (r.cached or r.coalesced)) <= 1


class TestBatchedSweep:
    """A ``--batch`` daemon serves byte-identical results and counts them."""

    def test_batched_sweep_matches_direct_session_and_counts(self, tmp_path):
        from repro.service import DaemonThread

        daemon = DaemonThread(base_config=CFG, cache_dir=tmp_path,
                              batch=True)
        daemon.start()
        try:
            grid = [tiny_request("fft", clusters) for clusters in (1, 2, 4)]
            with daemon.client() as client:
                reports = client.run_sweep(grid)
                stats = client.stats()
        finally:
            daemon.stop()
        session = RunSession(base_config=CFG, trace_cache=TraceCache())
        for request, report in zip(grid, reports):
            assert report.result.to_json() == session.run(request).to_json()
        batch = stats["batch"]
        assert batch["enabled"] is True
        assert batch["groups"] == 1
        assert batch["batched_points"] == 3
        assert batch["fused_points"] + batch["native_points"] == 3
        assert batch["fallback_points"] == 0
        # batch-primary joins are first deliveries, not coalesces
        assert stats["coalesced"] == 0
        assert stats["executed"] == 3


class TestServeCLI:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.func.__name__ == "cmd_serve"
        assert args.port == 8642 and args.host == "127.0.0.1"
        assert args.drain == pytest.approx(10.0)

    def test_parser_rejects_bad_drain(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--drain", "-1"])
        assert excinfo.value.code == 2
