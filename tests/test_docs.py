"""Documentation consistency checks: the docs must track the code."""

import re
from pathlib import Path

import pytest

from repro.apps.registry import APP_NAMES

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_design_lists_every_app(self):
        text = read("DESIGN.md")
        for app in APP_NAMES:
            assert app in text, f"DESIGN.md missing {app}"

    def test_per_experiment_benchmarks_exist(self):
        text = read("DESIGN.md")
        for target in re.findall(r"`benchmarks/(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_design_names_every_figure_and_table(self):
        text = read("DESIGN.md")
        for artifact in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                         "Figure 6", "Figure 7", "Figure 8", "Table 1",
                         "Table 4", "Table 5", "Table 6", "Table 7"):
            assert artifact in text, f"DESIGN.md missing {artifact}"


class TestReadme:
    def test_readme_mentions_all_deliverables(self):
        text = read("README.md")
        for needle in ("repro.memory", "repro.sim", "repro.apps",
                       "repro.core", "repro.analysis", "examples/",
                       "benchmarks/", "EXPERIMENTS.md", "DESIGN.md"):
            assert needle in text, f"README missing {needle}"

    def test_readme_quickstart_code_runs(self):
        """The README's quickstart snippet must execute as written
        (with a smaller problem for test speed)."""
        from repro import MachineConfig, run_app, summarize
        config = MachineConfig(n_processors=4, cluster_size=2,
                               cache_kb_per_processor=16)
        result = run_app("ocean", config, n=16, n_vcycles=1)
        assert "execution time" in summarize(result).format()


class TestApplicationsDoc:
    def test_every_app_documented(self):
        text = read("docs/APPLICATIONS.md")
        for app in APP_NAMES:
            assert f"## {app}" in text, f"docs/APPLICATIONS.md missing {app}"


class TestExperimentsDoc:
    def test_every_experiment_section_present(self):
        text = read("EXPERIMENTS.md")
        for section in ("E-F2", "E-F3", "E-T1", "E-T4", "E-T5", "E-T6",
                        "E-T7", "E-WS", "E-X1", "E-X2", "E-X3"):
            assert section in text, f"EXPERIMENTS.md missing {section}"

    def test_referenced_result_files_exist_or_regenerable(self):
        """Result paths named in EXPERIMENTS.md must match bench targets."""
        text = read("EXPERIMENTS.md")
        for ref in re.findall(r"`benchmarks/results/([\w.{}*]+\.txt)`", text):
            if any(ch in ref for ch in "{}*"):
                continue  # glob-style shorthand
            # file is produced by the bench run; check a producer exists
            stem = ref.split(".txt")[0]
            producers = list((ROOT / "benchmarks").glob("test_*.py"))
            assert producers, "no benchmarks found"


class TestInternalsDoc:
    def test_latency_table_matches_model(self):
        from repro.core.config import LatencyModel
        text = read("docs/INTERNALS.md")
        lm = LatencyModel()
        assert str(lm.local_clean) in text
        assert str(lm.remote_dirty_third_party) in text
