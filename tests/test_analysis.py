"""Tests for figure/table rendering and miss-class analysis."""

import pytest

from repro.analysis import (figure_from_capacity_sweep,
                            figure_from_cluster_sweep, merge_anatomy,
                            miss_breakdown, render_ascii, render_cost_table,
                            render_miss_breakdown, render_rows,
                            render_table1, render_table4, render_table5)
from repro.core.config import MachineConfig
from repro.core.contention import ExpansionTable, SharedCacheCostModel
from repro.core.study import ClusteringStudy


@pytest.fixture(scope="module")
def sweep():
    study = ClusteringStudy("radix", MachineConfig(n_processors=8),
                            {"n_keys": 512, "radix": 16, "n_digits": 1})
    return study.cluster_sweep(cache_kb=1.0, cluster_sizes=(1, 2, 4))


@pytest.fixture(scope="module")
def capacity(sweep):
    study = ClusteringStudy("radix", MachineConfig(n_processors=8),
                            {"n_keys": 512, "radix": 16, "n_digits": 1})
    return study.capacity_sweep(cache_sizes=(1, None), cluster_sizes=(1, 2))


class TestFigures:
    def test_cluster_figure_structure(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        assert len(fig.groups) == 1
        assert [b.label for b in fig.groups[0].bars] == ["1p", "2p", "4p"]
        assert fig.groups[0].bars[0].total == pytest.approx(100.0)

    def test_capacity_figure_groups(self, capacity):
        fig = figure_from_capacity_sweep("t", capacity)
        assert [g.label for g in fig.groups] == ["1k", "inf"]
        for g in fig.groups:
            assert g.bars[0].total == pytest.approx(100.0)

    def test_bar_lookup(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        assert fig.bar("", "2p").total > 0
        with pytest.raises(KeyError):
            fig.bar("", "16p")

    def test_series(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        totals = fig.series()[""]
        assert len(totals) == 3
        cpu = fig.series("cpu")[""]
        assert all(v > 0 for v in cpu)

    def test_render_rows_contains_values(self, sweep):
        fig = figure_from_cluster_sweep("my title", sweep)
        text = render_rows(fig)
        assert "my title" in text
        assert "100.0" in text
        assert "1p" in text and "4p" in text

    def test_render_ascii_runs(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        art = render_ascii(fig)
        assert "#" in art  # cpu glyph present
        assert "1p" in art


class TestTables:
    def test_table1_text(self):
        t = render_table1()
        assert "30" in t and "150" in t and "Hit in cache" in t

    def test_table4_text(self):
        t = render_table4()
        assert "0.125" in t and "0.199" in t

    def test_table5_text(self):
        t = render_table5({"lu": ExpansionTable((1.0, 1.055, 1.114, 1.173))})
        assert "1.055" in t and "lu" in t

    def test_cost_table_text(self):
        model = SharedCacheCostModel()
        res = model.evaluate("radix", 1.0,
                             MachineConfig(n_processors=8), (1, 2),
                             {"n_keys": 512, "radix": 16, "n_digits": 1})
        text = render_cost_table([res], "Table X")
        assert "Table X" in text and "radix" in text and "1.00" in text

    def test_cost_table_empty(self):
        assert "(no results)" in render_cost_table([], "T")


class TestMissAnalysis:
    def test_breakdown_rows(self, sweep):
        rows = miss_breakdown(sweep)
        assert [r.cluster_size for r in rows] == [1, 2, 4]
        for r in rows:
            assert r.cold + r.coherence + r.capacity == r.misses

    def test_render_miss_breakdown(self, sweep):
        text = render_miss_breakdown(miss_breakdown(sweep), "misses")
        assert "misses" in text and "1p" in text

    def test_merge_anatomy(self, sweep):
        anatomy = merge_anatomy(sweep)
        for c, row in anatomy.items():
            assert row["load_plus_merge"] == pytest.approx(
                row["load"] + row["merge"])

    def test_communication_fraction(self, sweep):
        rows = miss_breakdown(sweep)
        for r in rows:
            assert 0.0 <= r.communication_fraction <= 1.0
