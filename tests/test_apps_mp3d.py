"""MP3D application tests: conservation laws + unstructured sharing."""

import numpy as np
import pytest

from repro.apps.mp3d import MP3DApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=8, cluster_size=2,
                         cache_kb_per_processor=4)


class TestNumerics:
    def test_particles_stay_in_domain(self, cfg):
        app = MP3DApp(cfg, n_particles=500, n_steps=4)
        app.run()
        assert app.pos.min() >= 0.0
        assert app.pos.max() <= 1.0

    def test_cell_counts_conserved(self, cfg):
        app = MP3DApp(cfg, n_particles=500, n_steps=3)
        app.run()
        assert app.total_count() == pytest.approx(500 * 3)

    def test_energy_conserved_by_collisions(self, cfg):
        app = MP3DApp(cfg, n_particles=400, n_steps=3, collide_prob=0.5)
        app.ensure_setup()
        e0 = app.kinetic_energy()
        app.run()
        # wall reflections and speed-preserving scattering conserve KE
        assert app.kinetic_energy() == pytest.approx(e0, rel=1e-9)

    def test_no_collisions_is_ballistic(self, cfg):
        app = MP3DApp(cfg, n_particles=100, n_steps=1, collide_prob=0.0)
        app.ensure_setup()
        p0 = app.pos.copy()
        v0 = app.vel.copy()
        app.run()
        # particles that did not hit a wall moved by exactly dt*v
        moved = p0 + 0.05 * v0
        inside = np.all((moved > 0) & (moved < 1), axis=1)
        assert np.allclose(app.pos[inside], moved[inside])


class TestStructure:
    def test_requires_enough_particles(self):
        cfg = MachineConfig(n_processors=64)
        with pytest.raises(ValueError):
            MP3DApp(cfg, n_particles=10)

    def test_cell_of_in_range(self, cfg):
        app = MP3DApp(cfg, n_particles=100, cells_per_side=4)
        app.ensure_setup()
        for p in range(100):
            assert 0 <= app.cell_of(p) < 64

    def test_unstructured_readwrite_sharing(self, cfg):
        """Space cells are written by many clusters: coherence misses and
        upgrades must appear (the paper's communication stress test)."""
        from repro.core.metrics import MissCause
        app = MP3DApp(cfg, n_particles=800, n_steps=3)
        res = app.run()
        assert res.misses.by_cause[MissCause.COHERENCE] > 0
        assert res.misses.upgrade_misses > 0

    def test_communication_dominates_at_no_clustering(self, cfg):
        """Load-stall share should be substantial — MP3D is the paper's
        high-communication outlier."""
        app = MP3DApp(cfg, n_particles=800, n_steps=3)
        res = app.run()
        fr = res.breakdown.fractions()
        assert fr["load"] > 0.2

    def test_clustering_helps_somewhat(self):
        times = {}
        for cluster in (1, 8):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster)
            app = MP3DApp(cfg, n_particles=800, n_steps=3)
            times[cluster] = app.run().execution_time
        assert times[8] < times[1]
