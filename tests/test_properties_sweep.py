"""Property-based tests for the sweep normalization and result codec.

Uses hypothesis when available (it is in the dev environment); a small
always-on parametrized section keeps the core contracts covered even on a
bare install.
"""

import pytest

from repro.core.metrics import (MissCause, MissCounters, RunResult,
                                TimeBreakdown)
from repro.core.study import SweepPoint, normalize_sweep

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


# ------------------------------------------------------------- strategies

_component = st.integers(0, 10**7)


@st.composite
def breakdowns(draw, min_total=0):
    bd = TimeBreakdown(cpu=draw(_component), load=draw(_component),
                       merge=draw(_component), sync=draw(_component))
    if bd.total < min_total:
        bd.cpu += min_total - bd.total
    return bd


@st.composite
def miss_counters(draw):
    count = st.integers(0, 10**6)
    counters = MissCounters(
        reads=draw(count), writes=draw(count), read_misses=draw(count),
        write_misses=draw(count), upgrade_misses=draw(count),
        merges=draw(count), merge_refetches=draw(count),
        prefetch_hits=draw(count))
    for cause in MissCause:
        counters.by_cause[cause] = draw(count)
    return counters


@st.composite
def run_results(draw):
    n_proc = draw(st.integers(1, 6))
    n_clusters = draw(st.integers(1, n_proc))
    per_proc = [draw(breakdowns()) for _ in range(n_proc)]
    # the mean breakdown is float-valued in real results; model that too
    mean = TimeBreakdown(
        cpu=sum(b.cpu for b in per_proc) / n_proc,
        load=sum(b.load for b in per_proc) / n_proc,
        merge=sum(b.merge for b in per_proc) / n_proc,
        sync=sum(b.sync for b in per_proc) / n_proc)
    return RunResult(
        execution_time=draw(st.integers(0, 10**9)),
        breakdown=mean,
        per_processor=per_proc,
        misses=draw(miss_counters()),
        per_cluster_misses=[draw(miss_counters())
                            for _ in range(n_clusters)])


def _point(app, cluster, cache_kb, bd: TimeBreakdown) -> SweepPoint:
    result = RunResult(execution_time=bd.total, breakdown=bd,
                       per_processor=[bd], misses=MissCounters(),
                       per_cluster_misses=[MissCounters()])
    return SweepPoint(app, cluster, cache_kb, result)


@st.composite
def cluster_sweeps(draw):
    clusters = draw(st.lists(st.sampled_from([1, 2, 4, 8, 16]),
                             min_size=1, max_size=5, unique=True))
    if 1 not in clusters:
        clusters.append(1)
    return {c: _point("app", c, None, draw(breakdowns(min_total=1)))
            for c in clusters}


@st.composite
def capacity_sweeps(draw):
    caches = draw(st.lists(st.sampled_from([1, 4, 16, 32, None]),
                           min_size=1, max_size=4, unique=True))
    clusters = draw(st.lists(st.sampled_from([1, 2, 4, 8]),
                             min_size=1, max_size=4, unique=True))
    if 1 not in clusters:
        clusters.append(1)
    return {(kb, c): _point("app", c, kb, draw(breakdowns(min_total=1)))
            for kb in caches for c in clusters}


# ---------------------------------------------------------- normalization


@given(sweep=cluster_sweeps())
def test_baseline_bar_is_exactly_100(sweep):
    norm = normalize_sweep(sweep)
    assert norm[1]["total"] == 100.0


@given(sweep=capacity_sweeps())
def test_capacity_baselines_are_exactly_100_per_group(sweep):
    norm = normalize_sweep(sweep)
    for (kb, c) in sweep:
        if c == 1:
            assert norm[(kb, c)]["total"] == 100.0


@given(sweep=cluster_sweeps())
def test_components_sum_to_total(sweep):
    for v in normalize_sweep(sweep).values():
        assert v["cpu"] + v["load"] + v["merge"] + v["sync"] == \
            pytest.approx(v["total"], rel=1e-12, abs=1e-9)


@given(sweep=cluster_sweeps())
def test_normalization_preserves_ratios(sweep):
    """bar_total / 100 == execution_time / baseline_time for every bar."""
    norm = normalize_sweep(sweep)
    base = sweep[1].execution_time
    for c, point in sweep.items():
        assert norm[c]["total"] / 100.0 == \
            pytest.approx(point.execution_time / base, rel=1e-12)


@given(sweep=cluster_sweeps())
def test_missing_baseline_raises(sweep):
    partial = {c: p for c, p in sweep.items() if c != 1}
    if not partial:
        return  # removing the only point leaves an empty (legal) sweep
    with pytest.raises(ValueError, match="baseline"):
        normalize_sweep(partial)


@given(sweep=capacity_sweeps())
def test_missing_group_baseline_raises(sweep):
    partial = {(kb, c): p for (kb, c), p in sweep.items() if c != 1}
    if not partial:
        return
    with pytest.raises(ValueError, match="baseline"):
        normalize_sweep(partial)


# ------------------------------------------------------------- round-trip


@given(result=run_results())
@settings(max_examples=60)
def test_runresult_json_round_trip(result):
    assert RunResult.from_json(result.to_json()) == result


@given(result=run_results())
@settings(max_examples=60)
def test_runresult_json_round_trip_is_byte_stable(result):
    """encode → decode → encode reproduces the same bytes."""
    text = result.to_json()
    assert RunResult.from_json(text).to_json() == text


@given(bd=breakdowns())
def test_breakdown_dict_round_trip(bd):
    assert TimeBreakdown.from_dict(bd.to_dict()) == bd


@given(counters=miss_counters())
def test_misscounters_dict_round_trip(counters):
    assert MissCounters.from_dict(counters.to_dict()) == counters


# ----------------------------------------- always-on (no-hypothesis) core


class TestCodecEdgeCases:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            RunResult.from_json("[1, 2, 3]")

    def test_rejects_malformed_json(self):
        with pytest.raises(ValueError):
            RunResult.from_json("{not json")

    @pytest.mark.parametrize("value", ["12", None, True, [1]])
    def test_rejects_non_numeric_components(self, value):
        with pytest.raises(ValueError):
            TimeBreakdown.from_dict({"cpu": value, "load": 0, "merge": 0,
                                     "sync": 0})

    def test_rejects_unknown_cause(self):
        counters = MissCounters().to_dict()
        counters["by_cause"]["warp-drive"] = 3
        with pytest.raises(ValueError):
            MissCounters.from_dict(counters)

    def test_missing_cause_defaults_to_zero(self):
        payload = MissCounters().to_dict()
        del payload["by_cause"]["capacity"]
        restored = MissCounters.from_dict(payload)
        assert restored.by_cause[MissCause.CAPACITY] == 0

    def test_float_means_survive(self):
        bd = TimeBreakdown(cpu=1.25, load=0, merge=0, sync=0.75)
        restored = TimeBreakdown.from_dict(bd.to_dict())
        assert isinstance(restored.cpu, float) and restored.cpu == 1.25
