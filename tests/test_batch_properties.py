"""Property suite for batched lockstep replay.

Generates random (deadlock-free) parallel programs, compiles them, and
requires the fused batch kernel to reproduce the canonical engine's
result byte-for-byte — the same pin the nine real applications carry,
but over adversarial op streams: degenerate phases, empty processors,
lock convoys, tiny caches that evict constantly.

Also pins the two column decoders (pure python vs numpy) against each
other, and the planner's dynamic-app fallthrough.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import QUICK_PROBLEM_SIZES
from repro.core.config import MachineConfig
from repro.memory.coherence import CoherentMemorySystem
from repro.runtime.plan import RunRequest
from repro.sim.batch import (HAVE_NUMPY, BatchedReplay, BatchPlanner,
                             batch_aux_numpy, batch_aux_python, fusible,
                             replay_fused)
from repro.sim.compiled import compile_program
from repro.sim.engine import execute_program
from repro.sim.program import Barrier, Lock, Read, Unlock, Work, Write

# ------------------------------------------------------------ generators
#
# A generated program is a phase table: ``table[pid][phase]`` is a list of
# atoms, and every processor ends every phase with the same barrier, so
# any table is deadlock-free by construction.  Atoms are private work,
# shared reads/writes over a small address window (to force sharing and
# invalidation traffic), or a lock-protected critical section (locks are
# always released by the acquirer, in order).

_ADDR = st.integers(min_value=0, max_value=1023)
_BASIC = st.one_of(
    st.tuples(st.just("work"), st.integers(min_value=0, max_value=20)),
    st.tuples(st.just("read"), _ADDR),
    st.tuples(st.just("write"), _ADDR),
)
_ATOM = st.one_of(
    _BASIC,
    st.tuples(st.just("cs"), st.integers(min_value=0, max_value=2),
              st.lists(_BASIC, max_size=4)),
)


@st.composite
def _programs(draw):
    n = draw(st.sampled_from([2, 4]))
    phases = draw(st.integers(min_value=1, max_value=3))
    table = [[draw(st.lists(_ATOM, max_size=10)) for _ in range(phases)]
             for _ in range(n)]
    return n, phases, table


def _factory_of(phases, table):
    def emit(atom):
        kind, arg = atom[0], atom[1]
        if kind == "work":
            yield Work(arg)
        elif kind == "read":
            yield Read(arg)
        elif kind == "write":
            yield Write(arg)
        else:  # critical section
            yield Lock(arg)
            for basic in atom[2]:
                yield from emit(basic)
            yield Unlock(arg)

    def factory(pid):
        for phase in range(phases):
            for atom in table[pid][phase]:
                yield from emit(atom)
            yield Barrier(phase)

    return factory


def _config(n, cluster, cache_kb):
    return MachineConfig(n_processors=n, cluster_size=cluster,
                         cache_kb_per_processor=cache_kb)


_CACHES = st.sampled_from([None, 0.0625, 0.25])  # infinite / 4 / 16 lines


# ------------------------------------------------- fused == canonical

@settings(max_examples=60, deadline=None)
@given(data=_programs(), cluster_pick=st.integers(min_value=0, max_value=2),
       cache_kb=_CACHES)
def test_fused_replay_matches_canonical_engine(data, cluster_pick, cache_kb):
    n, phases, table = data
    cluster = [1, 2, n][cluster_pick]
    config = _config(n, cluster, cache_kb)
    program = compile_program(_factory_of(phases, table), n,
                              config.line_size)

    reference = execute_program(config, CoherentMemorySystem(config),
                                program, compiled=True)
    memory = CoherentMemorySystem(config)
    assert fusible(memory)
    fused = replay_fused(config, memory, program)
    assert fused.to_json() == reference.to_json()


@settings(max_examples=25, deadline=None)
@given(data=_programs(), cache_kb=_CACHES)
def test_one_batched_replay_drives_every_config_exactly(data, cache_kb):
    """One BatchedReplay (one decode) over a whole cluster grid."""
    n, phases, table = data
    program = compile_program(_factory_of(phases, table), n,
                              _config(n, 1, cache_kb).line_size)
    batch = BatchedReplay(program)
    for cluster in (1, 2, n):
        config = _config(n, cluster, cache_kb)
        reference = execute_program(config, CoherentMemorySystem(config),
                                    program, compiled=True)
        got = batch.run(config, CoherentMemorySystem(config))
        assert got.to_json() == reference.to_json()
    # served by a replay kernel (python fused, or native when built)
    assert batch.points_fused + batch.points_native == 3
    assert batch.points_fallback == 0


# ------------------------------------------------- decoder equivalence

@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@settings(max_examples=40, deadline=None)
@given(data=_programs())
def test_numpy_aux_decoder_matches_python_reference(data):
    n, phases, table = data
    config = _config(n, 1, None)
    program = compile_program(_factory_of(phases, table), n,
                              config.line_size)
    assert batch_aux_numpy(program) == batch_aux_python(program)


# ------------------------------------------------- planner fallthrough

def _grid(app, clusters=(1, 2, 4)):
    kwargs = QUICK_PROBLEM_SIZES.get(app, {})
    return [RunRequest.make(app, c, 4.0, kwargs) for c in clusters]


def test_stream_invariant_grid_collapses_into_one_group():
    base = MachineConfig(n_processors=8)
    plan = BatchPlanner().plan(_grid("fft"), base)
    assert len(plan.groups) == 1
    assert plan.groups[0].indices == (0, 1, 2)
    assert plan.singles == []


def test_dynamic_apps_fall_through_to_per_point_replay():
    base = MachineConfig(n_processors=8)
    for app in ("raytrace", "barnes", "volrend"):
        plan = BatchPlanner().plan(_grid(app), base)
        assert plan.groups == [], app
        assert plan.singles == [0, 1, 2], app


def test_lone_trace_keys_fall_through():
    base = MachineConfig(n_processors=8)
    plan = BatchPlanner().plan(_grid("fft", clusters=(1,)), base)
    assert plan.groups == []
    assert plan.singles == [0]


def test_mixed_sweep_partitions_exactly_once():
    base = MachineConfig(n_processors=8)
    specs = _grid("fft") + _grid("raytrace") + _grid("lu")
    plan = BatchPlanner().plan(specs, base)
    seen = sorted(i for g in plan.groups for i in g.indices)
    assert sorted(seen + plan.singles) == list(range(len(specs)))
    assert plan.singles == [3, 4, 5]  # the raytrace points
    assert plan.batched_points == 6
