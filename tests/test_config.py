"""Unit tests for MachineConfig and the Table-1 latency model."""

import pytest

from repro.core.config import (PAPER_CACHE_SIZES_KB, PAPER_CLUSTER_SIZES,
                               PAPER_NETWORK_LOADS, LatencyModel,
                               MachineConfig, NetworkConfig)


class TestLatencyModelTable1:
    """The latency model must reproduce the paper's Table 1 verbatim."""

    def setup_method(self):
        self.lm = LatencyModel()

    def test_hit_latencies(self):
        assert self.lm.hit_cycles(1) == 1
        assert self.lm.hit_cycles(2) == 2
        assert self.lm.hit_cycles(4) == 3
        assert self.lm.hit_cycles(8) == 3

    def test_hit_latency_beyond_table(self):
        assert self.lm.hit_cycles(64) == 3

    def test_hit_latency_invalid(self):
        with pytest.raises(ValueError):
            self.lm.hit_cycles(0)

    def test_miss_local_clean_30(self):
        assert self.lm.miss_cycles(requester=0, home=0, dirty_owner=None) == 30

    def test_miss_remote_clean_100(self):
        assert self.lm.miss_cycles(requester=0, home=1, dirty_owner=None) == 100

    def test_miss_local_home_dirty_remote_100(self):
        assert self.lm.miss_cycles(requester=0, home=0, dirty_owner=2) == 100

    def test_miss_remote_home_dirty_at_home_100(self):
        assert self.lm.miss_cycles(requester=0, home=1, dirty_owner=1) == 100

    def test_miss_third_party_150(self):
        assert self.lm.miss_cycles(requester=0, home=1, dirty_owner=2) == 150

    def test_requester_cannot_be_dirty_owner(self):
        with pytest.raises(ValueError):
            self.lm.miss_cycles(requester=0, home=1, dirty_owner=0)

    def test_hit_latency_independent_of_table_order(self):
        shuffled = LatencyModel(
            hit_by_cluster_size=((8, 3), (1, 1), (4, 3), (2, 2)))
        for size in (1, 2, 3, 4, 8, 64):
            assert shuffled.hit_cycles(size) == self.lm.hit_cycles(size)


class TestMachineConfig:
    def test_paper_defaults(self):
        cfg = MachineConfig()
        assert cfg.n_processors == 64
        assert cfg.line_size == 64
        assert cfg.cache_kb_per_processor is None

    def test_paper_constants(self):
        assert PAPER_CLUSTER_SIZES == (1, 2, 4, 8)
        assert PAPER_CACHE_SIZES_KB == (4, 16, 32, None)

    def test_n_clusters(self):
        assert MachineConfig(cluster_size=8).n_clusters == 8
        assert MachineConfig(cluster_size=1).n_clusters == 64

    def test_cluster_of_contiguous(self):
        cfg = MachineConfig(cluster_size=4)
        assert cfg.cluster_of(0) == 0
        assert cfg.cluster_of(3) == 0
        assert cfg.cluster_of(4) == 1
        assert cfg.cluster_of(63) == 15

    def test_processors_of(self):
        cfg = MachineConfig(cluster_size=4)
        assert list(cfg.processors_of(1)) == [4, 5, 6, 7]

    def test_cluster_cache_lines_scales_with_cluster(self):
        cfg = MachineConfig(cluster_size=4, cache_kb_per_processor=4)
        assert cfg.cluster_cache_lines == 4 * 1024 * 4 // 64

    def test_infinite_cache(self):
        assert MachineConfig().cluster_cache_lines is None

    def test_tiny_cache_at_least_one_line(self):
        cfg = MachineConfig(cluster_size=1,
                            cache_kb_per_processor=0.01)
        assert cfg.cluster_cache_lines == 1

    def test_cluster_size_must_divide(self):
        with pytest.raises(ValueError):
            MachineConfig(n_processors=64, cluster_size=3)

    def test_with_clusters_returns_new(self):
        cfg = MachineConfig()
        c2 = cfg.with_clusters(2)
        assert cfg.cluster_size == 1
        assert c2.cluster_size == 2

    def test_with_cache_kb(self):
        cfg = MachineConfig().with_cache_kb(16)
        assert cfg.cache_kb_per_processor == 16

    def test_with_associativity(self):
        cfg = MachineConfig(cache_kb_per_processor=4).with_associativity(2)
        assert cfg.associativity == 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MachineConfig(n_processors=0)
        with pytest.raises(ValueError):
            MachineConfig(cache_kb_per_processor=-1)
        with pytest.raises(ValueError):
            MachineConfig(associativity=0)

    def test_describe_mentions_shape(self):
        s = MachineConfig(cluster_size=4, cache_kb_per_processor=4).describe()
        assert "64p" in s and "4/cluster" in s and "4KB" in s

    def test_out_of_range_processor(self):
        with pytest.raises(ValueError):
            MachineConfig().cluster_of(64)
        with pytest.raises(ValueError):
            MachineConfig().processors_of(64)


class TestNetworkConfig:
    def test_defaults_are_flat_table(self):
        net = NetworkConfig()
        assert net.provider == "table"
        assert net.topology == "mesh"
        assert net.background_load == 0.0
        assert net.contention is True

    def test_paper_loads(self):
        assert PAPER_NETWORK_LOADS == (0.0, 0.3, 0.6, 0.8)

    def test_hop_cycles(self):
        assert NetworkConfig(wire_cycles=2, router_cycles=3).hop_cycles == 5

    def test_to_dict_lists_every_knob(self):
        d = NetworkConfig().to_dict()
        assert set(d) == {"provider", "topology", "wire_cycles",
                          "router_cycles", "directory_cycles",
                          "background_load", "contention"}

    @pytest.mark.parametrize("kwargs", [
        {"provider": "torus"},
        {"topology": "ring"},
        {"wire_cycles": 0, "router_cycles": 0},
        {"wire_cycles": -1},
        {"directory_cycles": 0},
        {"background_load": -0.1},
        {"background_load": 1.0},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            NetworkConfig(**kwargs)

    def test_machine_config_with_network(self):
        net = NetworkConfig(provider="mesh")
        cfg = MachineConfig().with_network(net)
        assert cfg.network == net
        assert MachineConfig().network.provider == "table"
        assert cfg.to_dict()["network"] == net.to_dict()
