"""Batched execution through the sweep executor: exactness and plumbing.

The load-bearing pin: ``SweepExecutor(batch=True)`` over the runtime
parity grid (all nine apps, two cluster sizes) must reproduce the
checked-in golden bytes — batching is an execution strategy, never a
second semantics.  The rest covers the batch plumbing: dedupe, stats,
failure isolation, backend sharding, and the service-facing
``submit_group`` seam.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import MachineConfig
from repro.core.executor import PointSpec, SweepExecutor
from repro.sim.compiled import TraceCache, clear_memory_cache

from test_runtime import TINY

GOLDEN = Path(__file__).parent / "golden" / "runtime_parity.json"

CFG = MachineConfig(n_processors=8)
OCEAN_KW = TINY["ocean"]


def _grid(apps, clusters=(1, 2), cache_kb=4.0):
    return [PointSpec.make(app, c, cache_kb, TINY[app])
            for app in apps for c in clusters]


class TestBatchedGoldenParity:
    def test_batched_executor_reproduces_the_golden_bytes(self):
        """All nine apps × two cluster sizes, batched == golden."""
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        clear_memory_cache()
        ex = SweepExecutor(batch=True, trace_cache=TraceCache())
        specs = _grid(TINY)
        outcomes = ex.run(specs, CFG)
        for spec, outcome in zip(specs, outcomes):
            assert outcome.ok, outcome.error
            key = f"{spec.app}/c{spec.cluster_size}/4k"
            assert outcome.result.to_json() == golden[key], \
                f"{key}: batched execution diverged from golden"
        # six stream-invariant apps batched (one group each), the three
        # dynamic apps fell through to the per-point path
        stats = ex.batch_stats
        assert stats.groups == 6
        assert stats.batched_points == 12
        assert stats.fallthrough_points == 6
        assert stats.fused_points + stats.native_points == 12
        assert stats.fallback_points == 0


class TestBatchedBackends:
    def test_process_backend_shards_groups_and_matches_serial(self):
        specs = _grid(("ocean", "fft"))
        serial = SweepExecutor().run(specs, CFG)
        ex = SweepExecutor(backend="process", max_workers=2, batch=True)
        try:
            batched = ex.run(specs, CFG)
        finally:
            ex.close()
        for s, b in zip(serial, batched):
            assert b.ok, b.error
            assert b.result.to_json() == s.result.to_json()
        assert ex.batch_stats.groups == 2
        stats = ex.batch_stats
        assert stats.fused_points + stats.native_points == 4

    def test_submit_group_resolves_to_outcomes_in_order(self):
        ex = SweepExecutor(batch=True)
        specs = _grid(("ocean",), clusters=(1, 2, 4))
        outcomes = ex.submit_group(specs, CFG).result(timeout=120)
        reference = SweepExecutor().run(specs, CFG)
        assert [o.spec for o in outcomes] == specs
        for got, ref in zip(outcomes, reference):
            assert got.ok, got.error
            assert got.result.to_json() == ref.result.to_json()
        stats = ex.batch_stats
        assert stats.fused_points + stats.native_points == 3

    def test_submit_group_turns_a_bad_point_into_an_error_outcome(self):
        ex = SweepExecutor(batch=True)
        outcomes = ex.submit_group(
            [PointSpec.make("notanapp", 1, None, {})], CFG).result(timeout=60)
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert "notanapp" in outcomes[0].error


class TestDedupe:
    def test_duplicate_specs_execute_once_and_share_the_result(self):
        spec = PointSpec.make("ocean", 2, 4.0, OCEAN_KW)
        other = PointSpec.make("ocean", 1, 4.0, OCEAN_KW)
        out = SweepExecutor().run([spec, other, spec], CFG)
        assert out[2].result is out[0].result
        assert out[2].elapsed == 0.0
        assert out[0].elapsed > 0.0
        assert out[1].result is not out[0].result

    def test_duplicates_of_a_failing_point_share_the_error(self):
        bad = PointSpec.make("notanapp", 1, None, {})
        out = SweepExecutor().run([bad, bad], CFG)
        assert not out[0].ok and not out[1].ok
        assert out[1].error == out[0].error


class TestBatchFlagValidation:
    def test_batch_requires_compiled_replay(self):
        with pytest.raises(ValueError, match="compiled"):
            SweepExecutor(batch=True, use_compiled=False)

    def test_unknown_app_is_isolated_under_batch(self):
        specs = [PointSpec.make("ocean", 1, 4.0, OCEAN_KW),
                 PointSpec.make("notanapp", 1, None, {}),
                 PointSpec.make("ocean", 2, 4.0, OCEAN_KW)]
        outcomes = SweepExecutor(batch=True).run(specs, CFG)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "notanapp" in outcomes[1].error
