"""Raytrace application tests: intersection math, octree, image sanity."""

import numpy as np
import pytest

from repro.apps.raytrace import RaytraceApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=16)


class TestGeometry:
    def test_ray_sphere_direct_hit(self, cfg):
        app = RaytraceApp(cfg, width=4, height=4, n_spheres=1)
        app.ensure_setup()
        app.centers[0] = (0.5, 0.5, 0.5)
        app.radii[0] = 0.1
        t = app._ray_sphere(np.array([0.5, 0.5, -0.5]),
                            np.array([0.0, 0.0, 1.0]), 0)
        assert t == pytest.approx(0.9, abs=1e-9)

    def test_ray_sphere_miss(self, cfg):
        app = RaytraceApp(cfg, width=4, height=4, n_spheres=1)
        app.ensure_setup()
        app.centers[0] = (0.5, 0.5, 0.5)
        app.radii[0] = 0.1
        assert app._ray_sphere(np.array([0.0, 0.0, -0.5]),
                               np.array([0.0, 0.0, 1.0]), 0) is None

    def test_octree_holds_all_spheres(self, cfg):
        app = RaytraceApp(cfg, width=4, height=4, n_spheres=16)
        app.ensure_setup()
        in_leaves = set()
        for node in app.nodes:
            if node.children is None:
                in_leaves.update(node.spheres)
        assert in_leaves == set(range(16))

    def test_octree_root_is_unit_cube(self, cfg):
        app = RaytraceApp(cfg, width=4, height=4, n_spheres=4)
        app.ensure_setup()
        root = app.nodes[0]
        assert np.allclose(root.center, 0.5)
        assert root.half == 0.5


class TestRendering:
    def test_image_deterministic(self, cfg):
        imgs = []
        for _ in range(2):
            app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
            app.run()
            imgs.append(app.image.copy())
        assert np.array_equal(imgs[0], imgs[1])

    def test_image_independent_of_clustering(self):
        imgs = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=4, cluster_size=cluster)
            app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
            app.run()
            imgs.append(app.image.copy())
        assert np.array_equal(imgs[0], imgs[1])

    def test_some_rays_hit_and_some_miss(self, cfg):
        app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
        app.run()
        assert app.rays_hit > 0
        assert app.rays_hit < app.rays_cast

    def test_shading_bounded(self, cfg):
        app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
        app.run()
        assert app.image.min() >= 0.0
        assert app.image.max() <= 1.0

    def test_reflections_change_image(self, cfg):
        a = RaytraceApp(cfg, width=16, height=16, n_spheres=16, max_depth=1)
        b = RaytraceApp(cfg, width=16, height=16, n_spheres=16, max_depth=3)
        a.run(), b.run()
        assert not np.array_equal(a.image, b.image)


class TestStructure:
    def test_image_must_tile(self):
        cfg = MachineConfig(n_processors=64)
        with pytest.raises(ValueError):
            RaytraceApp(cfg, width=30, height=30)

    def test_pixel_tiles_disjoint_and_complete(self, cfg):
        app = RaytraceApp(cfg, width=8, height=8, n_spheres=4)
        elems = {app._pixel_elem(y, x) for y in range(8) for x in range(8)}
        assert elems == set(range(64))

    def test_scene_pages_interleaved(self, cfg):
        app = RaytraceApp(cfg, width=8, height=8, n_spheres=64)
        app.ensure_setup()
        pages = range(app.rspheres.base // cfg.page_size,
                      (app.rspheres.end - 1) // cfg.page_size + 1)
        homes = [app.allocator.bound_home(p) for p in pages]
        assert None not in homes

    def test_scene_mostly_read_only(self, cfg):
        """The scene is read-only; the only coherence traffic comes from
        the tile queue head and pixel false sharing, which must stay a
        small fraction of all misses (paper: 'communication volume ...
        is small')."""
        from repro.core.metrics import MissCause
        app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
        res = app.run()
        coher = res.misses.by_cause[MissCause.COHERENCE]
        # bound: every queue grab + every falsely shared pixel line could
        # miss coherently, but the read-only scene itself never does
        n_tiles = (16 // app.queue_tile) ** 2
        pixel_lines = 16 * 16 * 8 // cfg.line_size
        assert coher <= 2 * (n_tiles + cfg.n_processors) + pixel_lines

    def test_dynamic_queue_balances_load(self, cfg):
        """Task stealing keeps barrier sync time a modest share."""
        app = RaytraceApp(cfg, width=16, height=16, n_spheres=8)
        res = app.run()
        assert res.breakdown.fractions()["sync"] < 0.35
