"""Ocean application tests: multigrid convergence + neighbour structure."""

import numpy as np
import pytest

from repro.apps.ocean import OceanApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=16, cluster_size=2,
                         cache_kb_per_processor=16)


class TestNumerics:
    def test_vcycles_reduce_residual(self, cfg):
        app = OceanApp(cfg, n=32, n_vcycles=3)
        app.ensure_setup()
        initial = float(np.linalg.norm(app.levels[0].f))
        app.run()
        assert app.residual_norm() < 0.5 * initial

    def test_more_cycles_converge_further(self, cfg):
        app2 = OceanApp(cfg, n=32, n_vcycles=2)
        app4 = OceanApp(cfg, n=32, n_vcycles=4)
        app2.run(), app4.run()
        assert app4.residual_norm() < app2.residual_norm()

    def test_solution_matches_direct_solve(self, cfg):
        """After enough V-cycles the iterate approaches the exact discrete
        solution (checked with a dense solve on a small grid)."""
        app = OceanApp(cfg, n=16, n_vcycles=8)
        app.run()
        n = 16
        h2 = app.levels[0].h2
        # assemble the cell-centred 5-point Laplacian (reflective ghosts:
        # a missing neighbour adds +1 to the diagonal)
        N = n * n
        A = np.zeros((N, N))
        for i in range(n):
            for j in range(n):
                k = i * n + j
                diag = 4.0
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < n and 0 <= jj < n:
                        A[k, ii * n + jj] = -1 / h2
                    else:
                        diag += 1.0
                A[k, k] = diag / h2
        exact = np.linalg.solve(A, app.levels[0].f.reshape(-1))
        err = np.abs(app.solution().reshape(-1) - exact).max()
        assert err < 0.05 * (np.abs(exact).max() + 1e-12)

    def test_result_independent_of_clustering(self):
        sols = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=16, cluster_size=cluster,
                                cache_kb_per_processor=4)
            app = OceanApp(cfg, n=32, n_vcycles=2)
            app.run()
            sols.append(app.solution())
        assert np.allclose(sols[0], sols[1])


class TestStructure:
    def test_levels_built_until_indivisible(self, cfg):
        app = OceanApp(cfg, n=32)
        # 16 procs -> 4x4 grid; 32,16,8,4 interiors divide; 4/4=1 row each
        assert [lvl.n for lvl in app.levels] == [32, 16, 8, 4]

    def test_unpartitionable_grid_rejected(self):
        cfg = MachineConfig(n_processors=64)
        with pytest.raises(ValueError):
            OceanApp(cfg, n=30)

    def test_subgrid_contiguous_layout(self, cfg):
        app = OceanApp(cfg, n=32)
        lvl = app.levels[0]
        # consecutive local columns are adjacent elements
        assert app._elem(lvl, 0, 1) == app._elem(lvl, 0, 0) + 1
        # next local row of same subgrid is sc elements later
        assert app._elem(lvl, 1, 0) == app._elem(lvl, 0, 0) + lvl.sc
        # crossing a subgrid column boundary jumps to another subgrid block
        assert app._elem(lvl, 0, lvl.sc) != app._elem(lvl, 0, lvl.sc - 1) + 1

    def test_partitions_placed_at_owner(self, cfg):
        # n=128 so each processor's subgrid (32x32 doubles = 8 KB) spans
        # whole pages; sub-page partitions cannot be placed separately.
        app = OceanApp(cfg, n=128)
        app.ensure_setup()
        lvl = app.levels[0]
        region = lvl.ru[0]
        # first element of processor 5's subgrid lives at cluster_of(5)
        pi, pj = app.proc_coords(5)
        addr = region.element(app._elem(lvl, pi * lvl.sr, pj * lvl.sc))
        assert app.allocator.bound_home(addr // cfg.page_size) == \
            cfg.cluster_of(5)

    def test_neighbour_communication_exists(self, cfg):
        app = OceanApp(cfg, n=32, n_vcycles=1)
        res = app.run()
        from repro.core.metrics import MissCause
        # boundary reads of neighbours' rows cause coherence misses after
        # the neighbours update their subgrids
        assert res.misses.by_cause[MissCause.COHERENCE] > 0

    def test_clustering_captures_neighbour_traffic(self):
        """Paper §4: doubling cluster size roughly halves Ocean's
        inter-cluster communication (row-adjacent processors cluster)."""
        stalls = {}
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=16, cluster_size=cluster)
            app = OceanApp(cfg, n=32, n_vcycles=2)
            res = app.run()
            stalls[cluster] = res.breakdown.load
        assert stalls[4] < 0.75 * stalls[1]
