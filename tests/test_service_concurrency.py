"""Single-flight and fault-injection properties of the sweep daemon.

The coalescing proof is deterministic, not probabilistic: a gated
:class:`~repro.runtime.hooks.RunObserver` blocks the (serial-backend,
same-process) execution at its first pipeline phase until the test has
confirmed — via ``/stats`` — that all N concurrent identical requests
are registered, then releases it.  Exactly one simulation may run, no
matter how the HTTP arrivals interleave.

The fault-injection half runs a real worker pool (process backend),
SIGKILLs a worker mid-service, and requires the daemon to answer with a
structured error — no traceback on the wire — while staying healthy
enough to serve the next request from a reopened pool.
"""

import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import MachineConfig
from repro.runtime import RunRequest
from repro.runtime.hooks import RunObserver
from repro.service import DaemonThread, ServiceClient, ServiceError

CFG = MachineConfig(n_processors=8)
LU = dict(n=32, block=8)
FFT = dict(n_points=256)


class GatedCountingObserver(RunObserver):
    """Counts completed executions; optionally holds them at the door."""

    def __init__(self, gated: bool = False) -> None:
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self.executions = 0
        self._lock = threading.Lock()

    def on_phase(self, name, elapsed_s, info) -> None:
        if name == "resolve":
            assert self.gate.wait(30.0), "execution gate never released"

    def on_result(self, plan, result) -> None:
        with self._lock:
            self.executions += 1


def _poll(predicate, deadline_s: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"{message} not reached within {deadline_s:g}s")


class TestSingleFlight:
    N = 8

    def test_n_concurrent_identical_requests_execute_once(self, tmp_path):
        observer = GatedCountingObserver(gated=True)
        daemon = DaemonThread(base_config=CFG, observer=observer,
                              cache_dir=tmp_path / "cache").start()
        try:
            request = RunRequest.make("lu", 2, 4.0, LU)
            poll_client = daemon.client()

            def one(_i: int):
                # clients are not thread-safe; one connection per thread
                with daemon.client() as client:
                    return client.run_point(request)

            with ThreadPoolExecutor(self.N) as pool:
                futures = [pool.submit(one, i) for i in range(self.N)]
                # hold the simulation until every request is registered,
                # so the coalescing claim cannot pass by lucky timing
                _poll(lambda: poll_client.stats()["points"] >= self.N,
                      message=f"{self.N} registered points")
                observer.gate.set()
                reports = [f.result(timeout=60) for f in futures]

            assert observer.executions == 1, \
                "single-flight violated: the simulation ran more than once"
            stats = poll_client.stats()
            assert stats["executed"] == 1
            assert stats["coalesced"] == self.N - 1
            assert stats["cache_hits"] == 0
            assert sum(1 for r in reports if r.coalesced) == self.N - 1
            assert len({r.result.to_json() for r in reports}) == 1
            poll_client.close()
        finally:
            daemon.stop()

    def test_request_after_completion_hits_the_cache_not_a_flight(
            self, tmp_path):
        observer = GatedCountingObserver()
        daemon = DaemonThread(base_config=CFG, observer=observer,
                              cache_dir=tmp_path / "cache").start()
        try:
            request = RunRequest.make("fft", 2, 4.0, FFT)
            with daemon.client() as client:
                first = client.run_point(request)
                second = client.run_point(request)
            assert observer.executions == 1
            assert first.cached is False and second.cached is True
            assert second.coalesced is False
        finally:
            daemon.stop()


class TestPerRequestTimeout:
    def test_deadline_expiry_is_a_504_and_the_flight_survives(
            self, tmp_path):
        observer = GatedCountingObserver(gated=True)
        daemon = DaemonThread(base_config=CFG, observer=observer,
                              cache_dir=tmp_path / "cache").start()
        try:
            request = RunRequest.make("lu", 1, 4.0, LU)
            with daemon.client() as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.run_point(request, timeout=0.2)
                assert excinfo.value.status == 504
                assert excinfo.value.kind == "timeout"
                assert client.stats()["timeouts"] == 1

                # the abandoned flight keeps running once released and
                # lands in the cache: the retry is served without a rerun
                observer.gate.set()
                _poll(lambda: observer.executions == 1,
                      message="abandoned flight completion")
                _poll(lambda: client.stats()["in_flight"] == 0,
                      message="flight table drained")
                retry = client.run_point(request)
            assert observer.executions == 1
            assert retry.cached is True
        finally:
            daemon.stop()


class TestWorkerFaultInjection:
    def test_killed_worker_yields_structured_error_and_daemon_survives(
            self):
        daemon = DaemonThread(base_config=CFG, backend="process",
                              max_workers=1).start()
        try:
            with daemon.client() as client:
                # warm the pool so there is a worker to murder
                warm = client.run_point(RunRequest.make("lu", 1, 4.0, LU))
                assert warm.result.execution_time > 0
                workers = daemon.worker_processes()
                assert workers, "process backend reported no workers"
                os.kill(workers[0].pid, signal.SIGKILL)

                with pytest.raises(ServiceError) as excinfo:
                    client.run_point(RunRequest.make("lu", 2, 4.0, LU))
                error = excinfo.value
                assert error.status == 500
                assert error.kind == "execution-error"
                assert "Traceback" not in error.message

                # the daemon itself never died, and the executor reopens
                # its pool for the next request
                assert client.healthz()["status"] == "ok"
                recovered = client.run_point(
                    RunRequest.make("fft", 2, 4.0, FFT))
                assert recovered.result.execution_time > 0
                stats = client.stats()
                assert stats["errors"] == 1
                assert stats["executed"] == 2
        finally:
            workers = daemon.worker_processes()
            daemon.stop()
            from conftest import assert_no_leaked_workers

            assert_no_leaked_workers(workers)

    def test_drained_shutdown_leaves_no_workers(self):
        daemon = DaemonThread(base_config=CFG, backend="process",
                              max_workers=1).start()
        with daemon.client() as client:
            client.run_point(RunRequest.make("fft", 1, 4.0, FFT))
        workers = daemon.worker_processes()
        assert workers
        daemon.stop()
        from conftest import assert_no_leaked_workers

        assert_no_leaked_workers(workers)
