"""Tests for the §6 shared-cache cost model (Tables 4-7 machinery)."""

import pytest

from repro.core.config import MachineConfig
from repro.core.contention import (PAPER_TABLE5, ExpansionTable,
                                   LoadLatencyProfiler, SharedCacheCostModel,
                                   bank_conflict_probability,
                                   banks_for_cluster, conflict_table)


class TestTable4:
    """The bank-conflict model must reproduce the paper's Table 4."""

    def test_paper_values(self):
        assert bank_conflict_probability(1) == 0.0
        assert bank_conflict_probability(2, 8) == pytest.approx(0.125)
        assert bank_conflict_probability(4, 16) == pytest.approx(0.176, abs=5e-4)
        assert bank_conflict_probability(8, 32) == pytest.approx(0.199, abs=5e-4)

    def test_default_banks_are_4n(self):
        assert banks_for_cluster(2) == 8
        assert banks_for_cluster(4) == 16
        assert banks_for_cluster(8) == 32

    def test_conflict_table_rows(self):
        rows = conflict_table()
        assert [r[0] for r in rows] == [1, 2, 4, 8]
        assert rows[0][2] == 0.0
        assert rows[3][2] == pytest.approx(0.199, abs=5e-4)

    def test_more_banks_fewer_conflicts(self):
        assert bank_conflict_probability(4, 64) < \
            bank_conflict_probability(4, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            bank_conflict_probability(2, 0)
        with pytest.raises(ValueError):
            banks_for_cluster(0)


class TestExpansionTable:
    def test_paper_rows_load(self):
        for app in ("barnes", "lu", "ocean", "radix", "volrend", "mp3d"):
            t = ExpansionTable.paper(app)
            assert t.factors[0] == 1.0

    def test_interpolation_between_integers(self):
        t = ExpansionTable((1.0, 1.1, 1.2, 1.3))
        assert t.at(1) == 1.0
        assert t.at(2.5) == pytest.approx(1.15)
        assert t.at(4) == pytest.approx(1.3)

    def test_extrapolation_beyond_4(self):
        t = ExpansionTable((1.0, 1.1, 1.2, 1.3))
        assert t.at(5) == pytest.approx(1.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExpansionTable((1.1, 1.2, 1.3, 1.4))  # baseline must be 1.0
        with pytest.raises(ValueError):
            ExpansionTable((1.0, 1.2, 1.1, 1.3))  # must be non-decreasing
        with pytest.raises(ValueError):
            ExpansionTable((1.0, 1.1, 1.2))  # need 4 entries
        with pytest.raises(ValueError):
            ExpansionTable((1.0, 1.1, 1.2, 1.3)).at(0.5)


class TestLoadLatencyProfiler:
    def test_factors_increase_with_latency(self):
        profiler = LoadLatencyProfiler(
            MachineConfig(n_processors=4),
            {"n_keys": 512, "radix": 16, "n_digits": 1})
        t = profiler.measure("radix")
        assert t.factors[0] == 1.0
        assert t.factors[1] > 1.0
        assert t.factors[3] >= t.factors[2] >= t.factors[1]


class TestCostModel:
    def test_cost_factor_baseline_is_one(self):
        model = SharedCacheCostModel()
        assert model.cost_factor("lu", 1) == pytest.approx(1.0)

    def test_cost_factor_grows_with_cluster(self):
        model = SharedCacheCostModel()
        f2 = model.cost_factor("lu", 2)
        f4 = model.cost_factor("lu", 4)
        f8 = model.cost_factor("lu", 8)
        assert 1.0 < f2 < f4 <= f8 * 1.01

    def test_paper_lu_factor_magnitude(self):
        """LU at 2-way: hit=2 cycles, C=0.125 -> factor ≈
        0.875·1.055 + 0.125·1.114 ≈ 1.062."""
        model = SharedCacheCostModel()
        assert model.cost_factor("lu", 2) == pytest.approx(1.062, abs=0.002)

    def test_unknown_app_uses_default_table(self):
        model = SharedCacheCostModel()
        f = model.cost_factor("fft", 4)
        assert f > 1.0

    def test_evaluate_produces_relative_times(self):
        model = SharedCacheCostModel()
        res = model.evaluate("radix", cache_kb=1.0,
                             base_config=MachineConfig(n_processors=4),
                             cluster_sizes=(1, 2),
                             app_kwargs={"n_keys": 512, "radix": 16,
                                         "n_digits": 1})
        assert res.relative_time[1] == pytest.approx(1.0)
        assert res.raw_time[1] > 0
        assert res.cost_factor[2] > 1.0

    def test_table5_constants_match_paper(self):
        assert PAPER_TABLE5["mp3d"][3] == 1.243
        assert PAPER_TABLE5["ocean"][1] == 1.061


class TestCostModelEdgeCases:
    def test_baseline_is_smallest_cluster_when_one_missing(self):
        model = SharedCacheCostModel()
        res = model.evaluate("radix", cache_kb=1.0,
                             base_config=MachineConfig(n_processors=4),
                             cluster_sizes=(2, 4),
                             app_kwargs={"n_keys": 512, "radix": 16,
                                         "n_digits": 1})
        # normalized to the smallest measured cluster (2)
        assert res.relative_time[2] == pytest.approx(1.0)

    def test_custom_expansion_tables(self):
        flat = ExpansionTable((1.0, 1.0, 1.0, 1.0))
        model = SharedCacheCostModel(expansion={"lu": flat},
                                     default_expansion=flat)
        # with flat expansion, only relative simulated times remain
        assert model.cost_factor("lu", 8) == pytest.approx(1.0)
        assert model.cost_factor("unknown-app", 8) == pytest.approx(1.0)

    def test_default_expansion_is_mean_of_rows(self):
        model = SharedCacheCostModel()
        import numpy as np
        mean4 = np.mean([f[3] for f in PAPER_TABLE5.values()])
        assert model.default_expansion.factors[3] == pytest.approx(mean4)
