"""The engine/sweep benchmark harness behind ``repro-clustering bench``."""

import json

import pytest

from repro.core.bench import (AppBenchResult, bench_engine, bench_sweep,
                              check_floor, write_report, SCHEMA_VERSION)
from repro.core.config import MachineConfig

TINY_LU = {"n": 32, "block": 8}
TINY_RAYTRACE = {"width": 8, "height": 8, "n_spheres": 8}
CFG = MachineConfig(n_processors=8, cluster_size=2,
                    cache_kb_per_processor=4.0)


def result_with(app="lu", source_ops=1000, replay_s=0.01, **over):
    fields = dict(app=app, n_processors=8, cluster_size=2,
                  source_ops=source_ops, stored_ops=source_ops,
                  legacy_s=0.05, generator_s=0.04, replay_s=replay_s,
                  capture_s=0.01)
    fields.update(over)
    return AppBenchResult(**fields)


class TestBenchEngine:
    def test_invariant_app_measures_all_paths(self):
        r = bench_engine("lu", CFG, app_kwargs=TINY_LU)
        assert r.app == "lu" and r.n_processors == 8
        assert r.source_ops > 0
        assert r.stored_ops <= r.source_ops  # WORK fusion only shrinks
        for t in (r.legacy_s, r.generator_s, r.replay_s, r.capture_s):
            assert t > 0
        assert r.replay_ops_per_s > 0 and r.replay_speedup > 0

    def test_dynamic_app_captures_via_recording(self):
        r = bench_engine("raytrace", CFG, app_kwargs=TINY_RAYTRACE)
        assert r.source_ops > 0 and r.replay_s > 0

    def test_repeats_keep_fastest(self):
        r = bench_engine("lu", CFG, app_kwargs=TINY_LU, repeats=2)
        assert r.replay_s > 0


class TestBenchSweep:
    def test_modes_identical_and_timed(self):
        sweep = bench_sweep(["lu"], MachineConfig(n_processors=8),
                            cluster_sizes=(1, 2), cache_kb=4.0,
                            kwargs_of={"lu": TINY_LU})
        assert sweep.identical
        assert sweep.n_points == 2
        for t in (sweep.legacy_s, sweep.generator_s, sweep.cold_s,
                  sweep.warm_s):
            assert t > 0
        assert sweep.cold_speedup > 0 and sweep.warm_speedup > 0


class TestReport:
    def test_write_report_layout(self, tmp_path):
        out = tmp_path / "sub" / "BENCH_engine.json"  # parent auto-created
        payload = write_report(out, [result_with()], config=CFG,
                               extra={"note": "unit"})
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["schema"] == SCHEMA_VERSION
        assert on_disk["engine"]["lu"]["replay_speedup"] == 5.0
        assert on_disk["config"]["n_processors"] == 8
        assert on_disk["note"] == "unit"


class TestFloor:
    def test_pass_and_fail(self):
        # 1000 ops / 0.01 s = 100k ops/s measured
        results = [result_with()]
        assert check_floor(results, {"lu": 100_000.0}) == []
        failures = check_floor(results, {"lu": 200_000.0})
        assert len(failures) == 1 and "lu" in failures[0]

    def test_tolerance_widens_the_floor(self):
        results = [result_with()]  # 100k measured
        assert check_floor(results, {"lu": 120_000.0}, tolerance=0.30) == []
        assert check_floor(results, {"lu": 120_000.0}, tolerance=0.0) != []

    def test_unknown_apps_ignored(self):
        assert check_floor([result_with()], {"fft": 1e12}) == []

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            check_floor([], {}, tolerance=1.5)


class TestBenchMemory:
    def test_streams_and_throughput(self):
        from repro.core.bench import bench_memory

        results = bench_memory(n_ops=5_000, repeats=1)
        assert [r.stream for r in results] == ["hit", "capacity", "sharing"]
        for r in results:
            assert r.n_ops == 5_000
            assert r.ops_per_s > 0
            assert r.to_dict()["ops_per_s"] == round(r.ops_per_s, 1)

    def test_memory_floor_keys(self):
        from repro.core.bench import MemoryBenchResult

        fast = MemoryBenchResult("hit", 1000, 0.001)     # 1M ops/s
        slow = MemoryBenchResult("sharing", 1000, 10.0)  # 100 ops/s
        floor = {"memory:hit": 1_000.0, "memory:sharing": 1_000_000.0}
        failures = check_floor([], floor, tolerance=0.1,
                               memory=[fast, slow])
        assert len(failures) == 1
        assert failures[0].startswith("memory:sharing")

    def test_report_carries_memory_and_jobs_sections(self, tmp_path):
        from repro.core.bench import JobsBenchResult, MemoryBenchResult

        payload = write_report(
            tmp_path / "b.json", [result_with()],
            memory=[MemoryBenchResult("hit", 1000, 0.001)],
            jobs=JobsBenchResult(["lu"], [1, 2], 2, 2, 1.0, 0.8))
        assert payload["memory"]["hit"]["n_ops"] == 1000
        assert payload["jobs"]["fork_speedup"] == 1.25
        on_disk = json.loads((tmp_path / "b.json").read_text())
        assert on_disk["memory"] == payload["memory"]


class TestBenchJobs:
    def test_process_vs_fork_identical(self):
        from repro.core.bench import bench_jobs

        r = bench_jobs(["lu"], CFG, cluster_sizes=(1, 2), jobs=2,
                       kwargs_of={"lu": TINY_LU})
        assert r.n_points == 2
        assert r.identical
        assert r.process_s > 0
        from repro.core.executor import fork_available
        if fork_available():
            assert r.fork_s is not None and r.fork_s > 0
            assert r.to_dict()["fork_speedup"] > 0
        else:
            assert r.fork_s is None
