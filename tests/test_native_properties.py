"""Property suite for the native C replay kernel.

The same adversarial-program generators as ``test_batch_properties``,
now requiring three-way agreement: the C kernel must reproduce both the
pure-python fused kernel and the canonical engine byte-for-byte — the
RunResult JSON *and* the full memory-system end state (slot maps in
dict order, free lists, histories, counters, allocator placement), so a
kernel that computed the right numbers by a different path still fails.

Every test that needs the compiled kernel skips cleanly when no C
compiler is available (or the kernel is disabled in the environment);
the selection-semantics tests run everywhere, compiler or not.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.native as native
from repro.core.config import MachineConfig
from repro.memory.coherence import CoherentMemorySystem
from repro.runtime import RunRequest, RunSession
from repro.sim.batch import BatchedReplay, replay_fused
from repro.sim.compiled import TraceCache, clear_memory_cache, compile_program
from repro.sim.engine import SimulationDeadlock, execute_program
from repro.sim.nativereplay import (native_fusible, replay_native,
                                    try_replay_native)
from repro.sim.program import Barrier, Lock, Read, Unlock, Work, Write

from test_batch_properties import _CACHES, _config, _factory_of, _programs
from test_runtime import CFG, TINY, golden_payload

try:
    _LIB = native.kernel()  # auto mode: None when no compiler/artifact
except RuntimeError:  # forced on but unbuildable — treat as unavailable
    _LIB = None

needs_kernel = pytest.mark.skipif(
    _LIB is None, reason="native kernel unavailable (no C compiler)")


@pytest.fixture
def force_native():
    """Force native selection for the test, restoring the env after."""
    prev = os.environ.get("REPRO_NATIVE")
    native.set_native(True)
    yield
    if prev is None:
        os.environ.pop("REPRO_NATIVE", None)
    else:
        os.environ["REPRO_NATIVE"] = prev


def _snapshot(memory):
    """The complete observable end state of a memory system.

    Includes iteration order everywhere order is observable (dict
    insertion order of slot maps and histories, free-list order), so the
    native writeback must leave the objects *indistinguishable* from the
    python kernel's, not merely equal as sets.
    """
    alloc = memory.allocator
    return {
        "dtable": list(memory._dtable.items()),
        "dir": (memory.directory.invalidations_sent,
                memory.directory.replacement_hints,
                memory.directory.writebacks),
        "caches": [
            (list(c.slot_of.items()), list(c.free), c.inserts, c.evictions,
             len(c.state),
             [(c.state[s], c.pending[s], c.fetcher[s], c.tag[s])
              for s in c.slot_of.values()])
            for c in memory.caches],
        "histories": [list(h.items()) for h in memory._history],
        "counters": [(ctr.reads, ctr.writes, ctr.read_misses,
                      ctr.write_misses, ctr.upgrade_misses, ctr.merges,
                      ctr.merge_refetches, ctr.prefetch_hits,
                      dict(ctr.by_cause))
                     for ctr in memory.counters],
        "alloc": (list(alloc._page_home.items()), alloc._rr_next,
                  alloc.first_touch_pages),
    }


# --------------------------------------- native == fused == canonical

@needs_kernel
@settings(max_examples=50, deadline=None)
@given(data=_programs(), cluster_pick=st.integers(min_value=0, max_value=2),
       cache_kb=_CACHES)
def test_native_matches_python_kernels(data, cluster_pick, cache_kb):
    n, phases, table = data
    cluster = [1, 2, n][cluster_pick]
    config = _config(n, cluster, cache_kb)
    program = compile_program(_factory_of(phases, table), n,
                              config.line_size)

    reference = execute_program(config, CoherentMemorySystem(config),
                                program, compiled=True)
    mem_fused = CoherentMemorySystem(config)
    fused = replay_fused(config, mem_fused, program)

    mem_native = CoherentMemorySystem(config)
    assert native_fusible(mem_native)
    got = replay_native(config, mem_native, program, lib=_LIB)

    assert got.to_json() == reference.to_json()
    assert got.to_json() == fused.to_json()
    assert _snapshot(mem_native) == _snapshot(mem_fused)


@needs_kernel
def test_batched_replay_dispatches_to_the_native_kernel(force_native):
    def factory(pid):
        yield Work(3)
        yield Read(pid)
        yield Write(pid + 64)
        yield Barrier(0)

    config = _config(4, 2, 0.0625)
    program = compile_program(factory, 4, config.line_size)
    reference = execute_program(config, CoherentMemorySystem(config),
                                program, compiled=True)
    batch = BatchedReplay(program)
    got = batch.run(config, CoherentMemorySystem(config))
    assert got.to_json() == reference.to_json()
    assert batch.points_native == 1
    assert batch.points_fused == 0


# ------------------------------------------------ error-path parity

@needs_kernel
def test_deadlock_message_matches_canonical(force_native):
    def factory(pid):
        if pid == 0:
            yield Barrier(0)
        else:
            yield Work(1)

    config = _config(2, 1, None)
    program = compile_program(factory, 2, config.line_size)
    with pytest.raises(SimulationDeadlock) as ref:
        execute_program(config, CoherentMemorySystem(config), program,
                        compiled=True)
    with pytest.raises(SimulationDeadlock) as got:
        replay_native(config, CoherentMemorySystem(config), program,
                      lib=_LIB)
    assert str(got.value) == str(ref.value)


@needs_kernel
@pytest.mark.parametrize("factory,exc", [
    (lambda pid: iter([Unlock(0)]), RuntimeError),          # bad release
    (lambda pid: iter([Lock(0), Lock(0)]), RuntimeError),   # re-acquire
])
def test_lock_errors_match_canonical(factory, exc):
    config = _config(2, 1, None)
    program = compile_program(factory, 2, config.line_size)
    with pytest.raises(exc) as ref:
        execute_program(config, CoherentMemorySystem(config), program,
                        compiled=True)
    with pytest.raises(exc) as got:
        replay_native(config, CoherentMemorySystem(config), program,
                      lib=_LIB)
    assert str(got.value) == str(ref.value)


# ------------------------------------------- runtime golden, native on

@needs_kernel
class TestGoldenNative:
    def test_runtime_golden_with_native_forced(self, force_native):
        """The 18-point pre-refactor golden grid, served by the C kernel."""
        golden = golden_payload()
        clear_memory_cache()
        session = RunSession(base_config=CFG, trace_cache=TraceCache())
        for app, kw in TINY.items():
            for c in (1, 2):
                result = session.run(RunRequest.make(app, c, 4.0, kw))
                assert result.to_json() == golden[f"{app}/c{c}/4k"], \
                    f"{app}/c{c}: native kernel diverged from golden"

    def test_per_point_seam_serves_eligible_points(self, force_native):
        from repro.apps.registry import build_app

        request = RunRequest.make("ocean", 2, 4.0, TINY["ocean"])
        config = request.config_for(CFG)
        app = build_app("ocean", config, **TINY["ocean"])
        program = app.compiled_program()
        fresh = build_app("ocean", config, **TINY["ocean"])
        result = try_replay_native(config, fresh, program)
        assert result is not None
        # canonical reference: the same app-owned allocator (setup has
        # already placed pages), driven by the python engine
        reference = build_app("ocean", config, **TINY["ocean"]).run(
            program=program)
        assert result.to_json() == reference.to_json()


# ------------------------------------------------ selection semantics
# (no compiler required: these pin the escape hatch and the fallback)

class TestSelection:
    def test_env_off_forces_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert native.enabled_mode() == "off"
        assert native.kernel() is None
        assert not native.selected()
        assert native.kernel_name() == "python"

    def test_set_native_round_trip(self):
        prev = os.environ.get("REPRO_NATIVE")
        try:
            native.set_native(True)
            assert os.environ["REPRO_NATIVE"] == "1"
            assert native.enabled_mode() == "on"
            native.set_native(False)
            assert os.environ["REPRO_NATIVE"] == "0"
            assert native.enabled_mode() == "off"
            native.set_native(None)
            assert "REPRO_NATIVE" not in os.environ
            assert native.enabled_mode() == "auto"
        finally:
            if prev is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = prev

    def test_masked_compiler_means_unavailable(self, monkeypatch, tmp_path):
        """The CI no-compiler job's mechanism: REPRO_NATIVE_CC to nowhere."""
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert not native.available()
        assert native.kernel() is None  # auto mode degrades silently
        assert native.kernel_name() == "python"
        assert native.status()["kernel"] == "python"

    def test_forced_on_without_a_kernel_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_NATIVE", "1")
        with pytest.raises(RuntimeError, match="REPRO_NATIVE=1"):
            native.kernel()

    def test_status_shape(self):
        status = native.status()
        assert set(status) == {"mode", "available", "loaded", "build_error",
                               "compiler", "abi", "kernel"}
        assert status["mode"] in ("on", "off", "auto")
        assert status["kernel"] in ("native", "python")
        assert status["abi"] == native.ABI_VERSION
