"""FFT application tests: transform correctness + all-to-all structure."""

import numpy as np
import pytest

from repro.apps.fft import FFTApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=16)


class TestNumerics:
    def test_matches_numpy_fft(self, cfg):
        app = FFTApp(cfg, n_points=256)
        app.run()
        ref = app.reference()
        err = np.abs(app.result() - ref).max() / np.abs(ref).max()
        assert err < 1e-10

    def test_larger_transform(self, cfg):
        app = FFTApp(cfg, n_points=4096)
        app.run()
        assert np.allclose(app.result(), app.reference(), atol=1e-8)

    def test_result_independent_of_clustering(self):
        outs = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=4, cluster_size=cluster,
                                cache_kb_per_processor=4)
            app = FFTApp(cfg, n_points=256)
            app.run()
            outs.append(app.result())
        assert np.allclose(outs[0], outs[1])


class TestStructure:
    def test_requires_square_size(self, cfg):
        with pytest.raises(ValueError):
            FFTApp(cfg, n_points=200)

    def test_requires_divisible_rows(self):
        cfg = MachineConfig(n_processors=64)
        with pytest.raises(ValueError):
            FFTApp(cfg, n_points=256)  # sqrt=16 < 64 processors

    def test_rows_contiguous_per_proc(self, cfg):
        app = FFTApp(cfg, n_points=256)
        rows = [app.my_rows(p) for p in range(4)]
        assert rows[0].stop == rows[1].start
        assert sum(len(r) for r in rows) == app.m

    def test_transpose_causes_remote_reads(self, cfg):
        """All-to-all: every cluster must take read misses to other
        clusters' rows during the transposes."""
        app = FFTApp(cfg, n_points=256)
        res = app.run()
        for ctr in res.per_cluster_misses:
            assert ctr.read_misses > 0

    def test_clustering_reduces_communication_by_expected_factor(self):
        """Paper §4: all-to-all communication falls only by (C-1)/(P-1)."""
        misses = {}
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster)
            app = FFTApp(cfg, n_points=1024)
            res = app.run()
            misses[cluster] = res.misses.read_misses
        # 4-way clustering on 8 procs removes 3/7 of the all-to-all pairs;
        # allow slack for cold misses on private rows
        ratio = misses[4] / misses[1]
        assert 0.45 < ratio < 0.95
