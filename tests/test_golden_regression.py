"""Golden regression tests: recorded artifacts vs fresh re-runs.

Two layers of protection against drift from future refactors:

* the seed artifacts under ``benchmarks/results/`` (full-scale, slow to
  regenerate) are parsed and checked for the paper's structural invariants
  — every baseline bar is 100.0 and components stack to the total;
* the quick fixtures under ``tests/golden/`` (seconds to regenerate) are
  **re-simulated here** and compared bar-by-bar within the rendering
  tolerance.  The simulator is deterministic, so any deviation is a real
  behaviour change, not noise.

To intentionally re-record the quick fixtures after a behaviour-changing
(and justified) change, delete ``tests/golden/*.txt`` and rebuild them with
the recipe in ``docs/EXECUTION.md``.
"""

from pathlib import Path

import pytest

from repro.analysis import (compare_figures, figure_from_capacity_sweep,
                            figure_from_cluster_sweep, load_figure,
                            max_deviation, parse_cost_table, parse_rows,
                            render_rows)
from repro.core.config import MachineConfig
from repro.core.study import ClusteringStudy

RESULTS = Path(__file__).parent.parent / "benchmarks" / "results"
GOLDEN = Path(__file__).parent / "golden"

#: rendered text rounds to 0.1, so a faithful re-run can differ by at most
#: one rounding step per component
TOLERANCE = 0.15

CFG = MachineConfig(n_processors=8)
GOLDEN_CASES = {
    "ocean": {"n": 16, "n_vcycles": 1},
    "radix": {"n_keys": 2048, "radix": 32},
    "lu": {"n": 32, "block": 8},
}


# ---------------------------------------------------------- seed artifacts


@pytest.mark.parametrize("path", sorted(RESULTS.glob("fig*.txt")),
                         ids=lambda p: p.stem)
def test_seed_artifact_invariants(path):
    """Every recorded figure obeys the paper's normalization contract."""
    fig = load_figure(path)
    for group in fig.groups:
        assert group.bars, f"empty group in {path.name}"
        # the 1p bar anchors its group at 100.0 (0.2: components rounded
        # to 0.1 can stack to 100.2 in the worst case)
        assert group.bars[0].total == pytest.approx(100.0, abs=0.21), \
            f"{path.name} group {group.label!r} baseline is not 100"


@pytest.mark.parametrize("name", ["table6_clustered_4kb", "table7_clustered_inf"])
def test_seed_cost_tables_anchor_at_one(name):
    table = parse_cost_table((RESULTS / f"{name}.txt").read_text())
    assert table, f"no rows parsed from {name}"
    for app, row in table.items():
        assert row["1-way"] == pytest.approx(1.0), \
            f"{name}: {app} is not normalized to the 1-way time"


def test_seed_fig2_covers_all_nine_apps():
    from repro.apps.registry import APP_NAMES
    recorded = {p.stem.removeprefix("fig2_") for p in RESULTS.glob("fig2_*.txt")}
    assert recorded == set(APP_NAMES)


# ------------------------------------------------------------ parser sanity


def test_parse_is_inverse_of_render():
    study = ClusteringStudy("ocean", CFG, dict(GOLDEN_CASES["ocean"]))
    fig = figure_from_cluster_sweep("round trip",
                                    study.cluster_sweep(None, (1, 2)))
    reparsed = parse_rows(render_rows(fig))
    assert compare_figures(reparsed, fig, TOLERANCE) == []


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_rows("just a title\nwith no rows")
    with pytest.raises(ValueError):
        parse_cost_table("nothing tabular here")


def test_parse_flags_inconsistent_rows():
    bad = ("t\n=\n group   bar   total     cpu    load   merge    sync\n"
           "----\n          1p   100.0    10.0    10.0    10.0    10.0\n")
    with pytest.raises(ValueError, match="inconsistent"):
        parse_rows(bad)


# ------------------------------------------------------- quick-scale re-runs


@pytest.mark.parametrize("app", sorted(GOLDEN_CASES))
def test_golden_cluster_sweep(app):
    """Fresh quick-scale bars match the recorded fixtures exactly (within
    text-rendering resolution)."""
    expected = load_figure(GOLDEN / f"cluster_{app}.txt")
    study = ClusteringStudy(app, CFG, dict(GOLDEN_CASES[app]))
    sweep = study.cluster_sweep(None, (1, 2, 4))
    fresh = figure_from_cluster_sweep(expected.title, sweep)
    deviations = compare_figures(fresh, expected, TOLERANCE)
    assert deviations == [], (
        f"{app} drifted from the golden fixture "
        f"(max deviation {max_deviation(fresh, expected):.2f} points): "
        f"{deviations[:6]}")


def test_golden_capacity_sweep():
    expected = load_figure(GOLDEN / "capacity_ocean.txt")
    study = ClusteringStudy("ocean", CFG, dict(GOLDEN_CASES["ocean"]))
    sweep = study.capacity_sweep((1, None), (1, 2))
    fresh = figure_from_capacity_sweep(expected.title, sweep)
    assert compare_figures(fresh, expected, TOLERANCE) == []
