"""LU application tests: real factorization + sharing structure."""

import numpy as np
import pytest

from repro.apps.lu import LUApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=4, cluster_size=2,
                         cache_kb_per_processor=16)


class TestNumerics:
    def test_factorization_reconstructs_input(self, cfg):
        app = LUApp(cfg, n=32, block=8)
        app.run()
        err = np.abs(app.reconstruct() - app.A_input).max()
        assert err < 1e-9

    def test_matches_scipy_lu_shape(self, cfg):
        """Without pivoting on a diagonally dominant matrix, L and U should
        satisfy L@U = A to machine precision (checked against numpy solve)."""
        app = LUApp(cfg, n=16, block=8)
        app.run()
        L = np.tril(app.A, -1) + np.eye(16)
        U = np.triu(app.A)
        x = np.linalg.solve(U, np.linalg.solve(L, np.ones(16)))
        ref = np.linalg.solve(app.A_input, np.ones(16))
        assert np.allclose(x, ref, rtol=1e-8)

    def test_different_seeds_different_matrices(self, cfg):
        a = LUApp(cfg, n=16, block=8, seed=1)
        b = LUApp(cfg, n=16, block=8, seed=2)
        a.setup(), b.setup()
        assert not np.allclose(a.A_input, b.A_input)

    def test_independent_of_clustering(self):
        """The numerical result must not depend on machine organisation."""
        results = []
        for cluster in (1, 2, 4):
            cfg = MachineConfig(n_processors=4, cluster_size=cluster,
                                cache_kb_per_processor=4)
            app = LUApp(cfg, n=32, block=8)
            app.run()
            results.append(app.A.copy())
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])


class TestStructure:
    def test_block_must_divide(self, cfg):
        with pytest.raises(ValueError):
            LUApp(cfg, n=30, block=16)

    def test_owner_scatter_decomposition(self, cfg):
        app = LUApp(cfg, n=64, block=16)
        owners = {app.owner_of(i, j) for i in range(4) for j in range(4)}
        assert owners == set(range(4))  # all 4 processors own blocks

    def test_blocks_placed_at_owner_cluster(self, cfg):
        app = LUApp(cfg, n=64, block=16)
        app.ensure_setup()
        for bi in range(app.nb):
            for bj in range(app.nb):
                addr = app.matrix.element(app._block_elem(bi, bj))
                page = addr // cfg.page_size
                expected = cfg.cluster_of(app.owner_of(bi, bj))
                assert app.allocator.bound_home(page) == expected

    def test_diag_owner_communicates_to_row(self, cfg):
        """Perimeter updates read the diagonal block: the cluster of the
        diagonal owner must see read traffic from other clusters."""
        app = LUApp(cfg, n=64, block=16)
        res = app.run()
        assert res.misses.read_misses > 0

    def test_execution_time_positive_and_breakdown_consistent(self, cfg):
        app = LUApp(cfg, n=32, block=8)
        res = app.run()
        assert res.execution_time > 0
        for bd in res.per_processor:
            assert bd.total == res.execution_time
