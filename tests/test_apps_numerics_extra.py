"""Deeper numerical properties of the applications (hypothesis-driven where
cheap): conservation laws, nesting invariants, and seed-sweep correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barnes import BarnesApp
from repro.apps.fft import FFTApp
from repro.apps.lu import LUApp
from repro.apps.radix import RadixApp
from repro.apps.volrend import VolrendApp
from repro.core.config import MachineConfig

CFG = MachineConfig(n_processors=4, cluster_size=2,
                    cache_kb_per_processor=16)


class TestFFTProperties:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_matches_numpy_for_any_seed(self, seed):
        app = FFTApp(CFG, n_points=256, seed=seed)
        app.run()
        assert np.allclose(app.result(), app.reference(), atol=1e-8)

    def test_parseval(self):
        """Energy conservation: ‖X‖² = N·‖x‖²."""
        app = FFTApp(CFG, n_points=1024)
        app.run()
        lhs = float(np.sum(np.abs(app.result()) ** 2))
        rhs = 1024 * float(np.sum(np.abs(app.x_input) ** 2))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_linearity_in_input_scale(self):
        a = FFTApp(CFG, n_points=256, seed=5)
        a.run()
        # scaling the input scales the output (fresh app, scaled input)
        b = FFTApp(CFG, n_points=256, seed=5)
        b.ensure_setup()
        b.x_input *= 2.0
        b.A[:] = b.x_input.reshape(b.m, b.m)
        b.run()
        assert np.allclose(b.result(), 2.0 * a.result(), atol=1e-8)


class TestLUProperties:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_reconstruction_for_any_seed(self, seed):
        app = LUApp(CFG, n=32, block=8, seed=seed)
        app.run()
        assert np.abs(app.reconstruct() - app.A_input).max() < 1e-8

    def test_determinant_matches_numpy(self):
        app = LUApp(CFG, n=24, block=8)
        app.run()
        # det(A) = prod(diag(U)) for unit-lower LU
        sign_ref, logdet_ref = np.linalg.slogdet(app.A_input)
        diag = np.diag(app.A)
        assert np.sign(np.prod(np.sign(diag))) == sign_ref
        assert np.sum(np.log(np.abs(diag))) == pytest.approx(logdet_ref,
                                                             rel=1e-9)


class TestRadixProperties:
    @given(seed=st.integers(0, 2**20),
           radix=st.sampled_from([8, 16, 64]),
           n_digits=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_sorts_for_any_parameters(self, seed, radix, n_digits):
        app = RadixApp(CFG, n_keys=256, radix=radix, n_digits=n_digits,
                       seed=seed)
        app.run()
        assert np.array_equal(app.result(), app.reference())

    def test_output_is_permutation_of_input(self):
        app = RadixApp(CFG, n_keys=512, radix=16, n_digits=2)
        app.run()
        assert np.array_equal(np.sort(app.result()),
                              np.sort(app.key_input))


class TestBarnesProperties:
    def test_all_bodies_inside_root_bounds(self):
        app = BarnesApp(CFG, n_particles=128, n_steps=1, dt=0.0)
        app.run()
        root = app.cells[0]
        lo = root.center - root.half
        hi = root.center + root.half
        assert np.all(app.pos >= lo - 1e-9)
        assert np.all(app.pos <= hi + 1e-9)

    def test_cells_nested_inside_parents(self):
        app = BarnesApp(CFG, n_particles=128, n_steps=1, dt=0.0)
        app.run()
        stack = [(0, None)]
        while stack:
            ci, parent = stack.pop()
            cell = app.cells[ci]
            if parent is not None:
                pc = app.cells[parent]
                assert np.all(np.abs(cell.center - pc.center)
                              <= pc.half + 1e-12)
                assert cell.half == pytest.approx(pc.half / 2)
            for slot in cell.children:
                if slot is not None and slot[0] == "c":
                    stack.append((slot[1], ci))

    def test_momentum_drift_small_without_forces(self):
        """dt=0 run: velocities unchanged."""
        app = BarnesApp(CFG, n_particles=64, n_steps=1, dt=0.0)
        app.ensure_setup()
        v0 = app.vel.copy()
        app.run()
        assert np.array_equal(app.vel, v0)


class TestVolrendProperties:
    def test_minmax_levels_halve(self):
        app = VolrendApp(CFG, volume_side=16, width=8, height=8, block=2)
        app.ensure_setup()
        shapes = [a.shape[0] for a in app.minmax]
        assert shapes[0] == 8
        for a, b in zip(shapes, shapes[1:]):
            assert b == a // 2
        assert shapes[-1] == 1

    def test_intensity_nonnegative_and_bounded(self):
        app = VolrendApp(CFG, volume_side=16, width=8, height=8)
        app.run()
        assert app.image.min() >= 0.0
        assert np.isfinite(app.image).all()

    def test_opacity_cutoff_monotone_in_work(self):
        """A lower cutoff can only terminate rays earlier (fewer samples)."""
        lo = VolrendApp(CFG, volume_side=16, width=8, height=8,
                        opacity_cutoff=0.5)
        hi = VolrendApp(CFG, volume_side=16, width=8, height=8,
                        opacity_cutoff=0.99)
        lo.ensure_setup(), hi.ensure_setup()
        _, t_lo = lo.march(4, 4)
        _, t_hi = hi.march(4, 4)
        n_lo = sum(1 for k, _ in t_lo if k == "voxel")
        n_hi = sum(1 for k, _ in t_hi if k == "voxel")
        assert n_lo <= n_hi
