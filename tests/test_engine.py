"""Unit tests for the event-driven engine: timing, accounting, determinism."""

import pytest

from repro.core.config import MachineConfig
from repro.memory.coherence import CoherentMemorySystem
from repro.memory.allocation import PageAllocator
from repro.sim.engine import (Engine, PerfectMemory, SimulationDeadlock,
                              run_program)
from repro.sim.program import Barrier, Lock, Read, Unlock, Work, Write


def cfg(n=2, cluster=1, cache=None):
    return MachineConfig(n_processors=n, cluster_size=cluster,
                         cache_kb_per_processor=cache)


def run(config, make_ops, **kw):
    def factory(pid):
        return iter(make_ops(pid))
    return run_program(config, factory, **kw)


class TestBasicTiming:
    def test_work_only(self):
        res = run(cfg(1), lambda pid: [Work(100)])
        assert res.execution_time == 100
        assert res.breakdown.cpu == 100
        assert res.breakdown.load == 0

    def test_read_hit_costs_one_cycle(self):
        res = run(cfg(1), lambda pid: [Read(0), Read(0)])
        # first read: cold miss (local home: 30) + 1; second: hit (1)
        assert res.execution_time == 32
        assert res.per_processor[0].load == 30
        assert res.per_processor[0].cpu == 2

    def test_write_never_stalls(self):
        res = run(cfg(1), lambda pid: [Write(0), Write(64), Write(128)])
        assert res.execution_time == 3
        assert res.per_processor[0].load == 0

    def test_zero_work_allowed(self):
        res = run(cfg(1), lambda pid: [Work(0), Work(5)])
        assert res.execution_time == 5

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            run(cfg(1), lambda pid: [Work(-1)])

    def test_empty_program(self):
        res = run(cfg(2), lambda pid: [])
        assert res.execution_time == 0

    def test_read_hit_cycles_parameter(self):
        res = run(cfg(1), lambda pid: [Read(0), Read(0), Read(0)],
                  memory=PerfectMemory(), read_hit_cycles=3)
        assert res.execution_time == 9

    def test_max_cycles_guard(self):
        with pytest.raises(RuntimeError, match="max_cycles"):
            run(cfg(1), lambda pid: [Work(10**9)], max_cycles=1000)


class TestAccountingInvariant:
    def test_components_sum_to_execution_time(self):
        def ops(pid):
            yield Work(10 * (pid + 1))
            yield Read(pid * 4096)
            yield Barrier(0)
            yield Read(0)
        res = run(cfg(4, cluster=2, cache=4), ops)
        for bd in res.per_processor:
            assert bd.total == res.execution_time

    def test_mean_breakdown_total(self):
        def ops(pid):
            yield Work(100 if pid == 0 else 10)
        res = run(cfg(2), ops)
        assert res.execution_time == 100
        assert abs(res.breakdown.total - 100) < 1e-9
        # the fast processor's slack shows up as sync
        assert res.per_processor[1].sync == 90


class TestMergeAccounting:
    def test_cluster_mate_merges_then_hits(self):
        # p0 reads line 0 at t=0 (miss, 30); p1 works 5 then reads line 0:
        # merge stall 25, then hit.
        def ops(pid):
            if pid == 0:
                yield Read(0)
            else:
                yield Work(5)
                yield Read(0)
        res = run(cfg(2, cluster=2, cache=4), ops)
        p1 = res.per_processor[1]
        assert p1.merge == 25
        assert p1.load == 0

    def test_merge_refetch_counts_load(self):
        # p0 (cluster 0) reads; p1 (cluster 1) write-invalidates while
        # pending; p0's cluster-mate merged read must refetch.
        config = MachineConfig(n_processors=4, cluster_size=2,
                               cache_kb_per_processor=4)

        def ops(pid):
            if pid == 0:
                yield Read(0)          # t=0 miss, pending till 30
            elif pid == 1:
                yield Work(5)
                yield Read(0)          # merge till 30, then refetch
            elif pid == 2:
                yield Work(10)
                yield Write(0)         # invalidates cluster 0's pending line
            else:
                yield Work(1)
        al = PageAllocator(config.n_clusters, config.page_size,
                           config.line_size)
        al.place_page(0, 0)
        mem = CoherentMemorySystem(config, al)
        res = run(config, ops, memory=mem)
        p1 = res.per_processor[1]
        assert p1.merge == 25
        assert p1.load == 100  # dirty in cluster 1, home local
        assert mem.counters[0].merge_refetches == 1


class TestBarriers:
    def test_barrier_waits_charged_to_sync(self):
        def ops(pid):
            yield Work(10 if pid == 0 else 50)
            yield Barrier(0)
            yield Work(1)
        res = run(cfg(2), ops)
        assert res.per_processor[0].sync == 40
        assert res.per_processor[1].sync == 0
        assert res.execution_time == 51

    def test_sequential_barriers(self):
        def ops(pid):
            yield Barrier(0)
            yield Work(pid * 10)
            yield Barrier(1)
        res = run(cfg(3), ops)
        assert res.execution_time == 20

    def test_missing_participant_deadlocks(self):
        def ops(pid):
            if pid == 0:
                yield Barrier(0)
            else:
                yield Work(1)
        with pytest.raises(SimulationDeadlock, match="barrier 0"):
            run(cfg(2), ops)


class TestLocks:
    def test_lock_serializes(self):
        def ops(pid):
            yield Lock(0)
            yield Work(100)
            yield Unlock(0)
        res = run(cfg(2), ops)
        # second holder waits ~one critical section
        assert res.execution_time >= 200
        assert max(bd.sync for bd in res.per_processor) >= 100

    def test_uncontended_lock_cheap(self):
        def ops(pid):
            yield Lock(pid)  # distinct locks
            yield Work(10)
            yield Unlock(pid)
        res = run(cfg(4), ops)
        assert res.execution_time <= 13

    def test_lock_wait_charged_to_sync(self):
        def ops(pid):
            if pid == 0:
                yield Lock(0)
                yield Work(30)
                yield Unlock(0)
            else:
                yield Lock(0)
                yield Unlock(0)
        res = run(cfg(2), ops)
        assert res.per_processor[1].sync >= 29


class TestDeterminism:
    def test_same_seed_same_result(self):
        def factory(pid):
            def gen():
                for i in range(50):
                    yield Work((pid * 7 + i) % 5)
                    yield Read(((pid * 13 + i * 29) % 64) * 64)
                    if i % 10 == 0:
                        yield Barrier(i)
            return gen()
        config = cfg(4, cluster=2, cache=4)
        r1 = run_program(config, factory)
        r2 = run_program(config, factory)
        assert r1.execution_time == r2.execution_time
        for a, b in zip(r1.per_processor, r2.per_processor):
            assert (a.cpu, a.load, a.merge, a.sync) == (b.cpu, b.load,
                                                        b.merge, b.sync)


class TestRunResult:
    def test_misses_populated(self):
        res = run(cfg(2, cluster=2, cache=4), lambda pid: [Read(pid * 64)])
        assert res.misses.references == 2
        assert res.misses.read_misses == 2
        assert len(res.per_cluster_misses) == 1

    def test_perfect_memory_counters_empty(self):
        res = run(cfg(2), lambda pid: [Read(0)], memory=PerfectMemory())
        assert res.misses.references == 0
        assert res.per_cluster_misses == []


class TestLockEdgeCases:
    def test_unlock_without_lock_raises(self):
        with pytest.raises(RuntimeError):
            run(cfg(1), lambda pid: [Unlock(0)])

    def test_handoff_chain_three_waiters(self):
        order = []

        def ops(pid):
            yield Work(pid)  # staggered arrivals: FIFO order = pid order
            yield Lock(0)
            order.append(pid)
            yield Work(10)
            yield Unlock(0)
        res = run(cfg(4), ops)
        assert order == [0, 1, 2, 3]
        # each waiter serialized behind ~one critical section per holder
        assert res.execution_time >= 40

    def test_lock_and_barrier_interleave(self):
        def ops(pid):
            yield Lock(pid % 2)
            yield Work(5)
            yield Unlock(pid % 2)
            yield Barrier(0)
            yield Work(1)
        res = run(cfg(4), ops)
        for bd in res.per_processor:
            assert bd.total == res.execution_time
