"""SweepExecutor behaviour: spec coercion, backends, failure isolation."""

import pytest

from repro.core.config import MachineConfig
from repro.core.executor import (BACKENDS, PointOutcome, PointSpec,
                                 SweepExecutionError, SweepExecutor,
                                 as_point_spec, fork_available,
                                 raise_failures)
from repro.core.study import ClusteringStudy

CFG = MachineConfig(n_processors=8)
OCEAN_KW = {"n": 16, "n_vcycles": 1}


class TestPointSpec:
    def test_make_sorts_kwargs(self):
        a = PointSpec.make("ocean", 2, 4, {"b": 1, "a": 2})
        b = PointSpec.make("ocean", 2, 4, {"a": 2, "b": 1})
        assert a == b
        assert a.kwargs == {"a": 2, "b": 1}

    def test_specs_are_hashable(self):
        assert len({PointSpec.make("lu", 1, None, {"n": 32}),
                    PointSpec.make("lu", 1, None, {"n": 32})}) == 1

    def test_config_for_applies_cluster_and_cache(self):
        spec = PointSpec.make("ocean", 4, 16, {})
        cfg = spec.config_for(CFG)
        assert cfg.cluster_size == 4
        assert cfg.cache_kb_per_processor == 16.0
        spec_inf = PointSpec.make("ocean", 2, None, {})
        assert spec_inf.config_for(CFG).cache_kb_per_processor is None

    def test_coercion_from_tuples_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="PointSpec.make"):
            assert as_point_spec(("ocean", 2, 4)) == \
                PointSpec.make("ocean", 2, 4, {})
        with pytest.warns(DeprecationWarning, match="PointSpec.make"):
            assert as_point_spec(["ocean", 2, None, {"n": 16}]) == \
                PointSpec.make("ocean", 2, None, {"n": 16})

    def test_coercion_passes_specs_through_silently(self):
        import warnings

        spec = PointSpec.make("lu", 1, None, {})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert as_point_spec(spec) is spec

    def test_pointspec_is_the_runtime_request(self):
        from repro.runtime import RunRequest

        assert PointSpec is RunRequest

    def test_coercion_rejects_junk(self):
        with pytest.raises(TypeError, match="sweep point"):
            as_point_spec("ocean")
        with pytest.raises(TypeError):
            as_point_spec(("ocean", 2))

    def test_describe_mentions_everything(self):
        text = PointSpec.make("ocean", 4, None, {"n": 16}).describe()
        assert "ocean" in text and "4" in text and "inf" in text \
            and "n=16" in text


class TestConstruction:
    def test_backends_constant(self):
        assert set(BACKENDS) == {"serial", "process", "fork"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepExecutor(backend="threads")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            SweepExecutor(max_workers=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            SweepExecutor(timeout=-1.0)


class TestFailureIsolation:
    """One bad point must not take down the sweep."""

    def test_unknown_app_is_isolated_serial(self):
        specs = [PointSpec.make("ocean", 1, None, OCEAN_KW),
                 PointSpec.make("notanapp", 1, None, {}),
                 PointSpec.make("ocean", 2, None, OCEAN_KW)]
        outcomes = SweepExecutor().run(specs, CFG)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "notanapp" in outcomes[1].error
        assert outcomes[1].result is None

    def test_unknown_app_is_isolated_process(self):
        specs = [PointSpec.make("ocean", 1, None, OCEAN_KW),
                 PointSpec.make("notanapp", 1, None, {})]
        outcomes = SweepExecutor(backend="process", max_workers=2).run(
            specs, CFG)
        assert [o.ok for o in outcomes] == [True, False]
        assert "notanapp" in outcomes[1].error

    def test_bad_kwargs_are_isolated(self):
        outcomes = SweepExecutor().run(
            [PointSpec.make("ocean", 1, None, {"no_such_knob": 3})], CFG)
        assert not outcomes[0].ok

    def test_raise_failures_collects_all(self):
        bad = PointOutcome(PointSpec.make("x", 1, None, {}), error="boom")
        good = PointOutcome(PointSpec.make("y", 1, None, {}),
                            result=object())
        with pytest.raises(SweepExecutionError) as exc:
            raise_failures([good, bad, bad])
        assert len(exc.value.failures) == 2
        assert "boom" in str(exc.value)

    def test_raise_failures_quiet_when_clean(self):
        good = PointOutcome(PointSpec.make("y", 1, None, {}),
                            result=object())
        raise_failures([good])  # no exception

    def test_study_raises_on_failed_point(self):
        study = ClusteringStudy("ocean", CFG, {"no_such_knob": 1})
        with pytest.raises(SweepExecutionError):
            study.run_point(1, None)

    def test_timeout_reports_error_not_crash(self):
        """A point exceeding the per-point budget becomes an error outcome."""
        slow = PointSpec.make("ocean", 1, None, {"n": 32, "n_vcycles": 2})
        executor = SweepExecutor(backend="process", max_workers=1,
                                 timeout=1e-4)
        outcomes = executor.run([slow], CFG)
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error


class TestPoolLifecycle:
    def test_pool_is_reused_across_runs(self):
        with SweepExecutor(backend="process", max_workers=2) as executor:
            first = executor.run(
                [PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG)
            pool = executor._pool
            second = executor.run(
                [PointSpec.make("ocean", 2, None, OCEAN_KW)], CFG)
            assert executor._pool is pool
        assert executor._pool is None  # context exit closed it
        assert first[0].ok and second[0].ok

    def test_close_is_idempotent_and_pool_reopens(self):
        executor = SweepExecutor(backend="process", max_workers=1)
        executor.close()
        executor.close()
        outcome = executor.run(
            [PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG)[0]
        assert outcome.ok
        executor.close()
        assert executor._pool is None


class TestResults:
    def test_elapsed_recorded(self):
        outcome = SweepExecutor().run(
            [PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG)[0]
        assert outcome.ok and outcome.elapsed > 0.0 and not outcome.cached

    def test_default_base_config_is_paper_machine(self):
        outcome = SweepExecutor().run_one(
            PointSpec.make("lu", 1, None, {"n": 16, "block": 4}))
        assert outcome.ok
        assert outcome.result.n_processors == 64

    def test_study_sweeps_match_previous_api(self):
        """The executor-backed sweeps keep the historical dict shapes."""
        study = ClusteringStudy("ocean", CFG, dict(OCEAN_KW))
        cluster = study.cluster_sweep(None, (1, 2))
        assert set(cluster) == {1, 2}
        assert cluster[2].cluster_size == 2
        capacity = study.capacity_sweep((1, None), (1, 2))
        assert set(capacity) == {(1, 1), (1, 2), (None, 1), (None, 2)}
        assert capacity[(1, 2)].cache_kb == 1


@pytest.mark.skipif(not fork_available(), reason="no fork start method")
class TestForkBackend:
    """Fork-server mode: preload in the parent, inherit copy-on-write."""

    def test_fork_matches_serial(self, tmp_path):
        from repro.core.resultcache import TraceStore
        from repro.sim.compiled import TraceCache, clear_memory_cache

        specs = [PointSpec.make("ocean", c, None, OCEAN_KW)
                 for c in (1, 2)]
        store = TraceStore(tmp_path)
        clear_memory_cache()
        serial = SweepExecutor(backend="serial",
                               trace_cache=TraceCache(store))
        want = [o.result.to_json() for o in serial.run(specs, CFG)]

        clear_memory_cache()
        with SweepExecutor(backend="fork", max_workers=2,
                           trace_cache=TraceCache(store)) as executor:
            outcomes = executor.run(specs, CFG)
        raise_failures(outcomes)
        assert [o.result.to_json() for o in outcomes] == want

    def test_preload_pulls_disk_traces_into_memory(self, tmp_path):
        from repro.core.resultcache import TraceStore
        from repro.sim.compiled import (TraceCache, clear_memory_cache,
                                        memory_cache_len)

        specs = [PointSpec.make("ocean", c, None, OCEAN_KW)
                 for c in (1, 2)]
        store = TraceStore(tmp_path)
        # populate the disk tier, then forget the in-memory one
        clear_memory_cache()
        SweepExecutor(backend="serial",
                      trace_cache=TraceCache(store)).run(specs, CFG)
        clear_memory_cache()
        assert memory_cache_len() == 0

        executor = SweepExecutor(backend="fork",
                                 trace_cache=TraceCache(store))
        # ocean is stream-invariant: both cluster sizes share one trace
        assert executor.preload_traces(specs, CFG) == 1
        assert memory_cache_len() == 1
        # preload is warmup, not demand traffic: counters untouched
        assert executor.trace_cache.hits == 0
        assert executor.trace_cache.misses == 0

    def test_preload_without_disk_tier_is_a_noop(self):
        from repro.sim.compiled import TraceCache, clear_memory_cache

        clear_memory_cache()
        executor = SweepExecutor(backend="fork", trace_cache=TraceCache())
        assert executor.preload_traces(
            [PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG) == 0


def test_fork_backend_rejected_without_fork(monkeypatch):
    import multiprocessing

    monkeypatch.setattr(multiprocessing, "get_all_start_methods",
                        lambda: ["spawn"])
    with pytest.raises(ValueError, match="fork"):
        SweepExecutor(backend="fork")
