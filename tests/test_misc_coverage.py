"""Coverage for remaining corners: registry presets, engine hit-cost
interaction with the coherent memory, snoopy upgrade paths, summaries."""

import numpy as np
import pytest

from repro.apps.registry import PAPER_PROBLEM_SIZES, build_app
from repro.core.config import MachineConfig
from repro.memory.cache import EXCLUSIVE, SHARED
from repro.memory.coherence import CoherentMemorySystem
from repro.memory.snoopy import SnoopyClusterMemorySystem
from repro.sim.engine import run_program
from repro.sim.program import Read, Work, Write
from repro.sim.stats import summarize


class TestRegistryPresets:
    def test_paper_sizes_match_table2(self):
        assert PAPER_PROBLEM_SIZES["barnes"]["n_particles"] == 8192
        assert PAPER_PROBLEM_SIZES["fft"]["n_points"] == 65536
        assert PAPER_PROBLEM_SIZES["lu"]["n"] == 512
        assert PAPER_PROBLEM_SIZES["lu"]["block"] == 16
        assert PAPER_PROBLEM_SIZES["mp3d"]["n_particles"] == 50000
        assert PAPER_PROBLEM_SIZES["radix"]["n_keys"] == 262144
        assert PAPER_PROBLEM_SIZES["radix"]["radix"] == 256
        assert PAPER_PROBLEM_SIZES["ocean"]["n"] == 128

    def test_paper_scale_constructs(self):
        """Paper-scale apps must at least construct and set up."""
        cfg = MachineConfig(n_processors=64)
        app = build_app("lu", cfg, paper_scale=True)
        assert app.n == 512
        app = build_app("fft", cfg, paper_scale=True)
        assert app.n_points == 65536


class TestEngineHitCostWithRealMemory:
    def test_hit_cost_scales_hits_only(self):
        cfg = MachineConfig(n_processors=1)

        def prog(pid):
            return iter([Read(0)] + [Read(0)] * 9)  # 1 miss + 9 hits

        t1 = run_program(cfg, prog).execution_time
        t3 = run_program(cfg, prog, read_hit_cycles=3).execution_time
        # miss latency (30) identical; each of 10 completions costs 1 vs 3
        assert t3 - t1 == 10 * 2

    def test_write_cost_fixed(self):
        cfg = MachineConfig(n_processors=1)

        def prog(pid):
            return iter([Write(0)] * 5)

        t1 = run_program(cfg, prog).execution_time
        t3 = run_program(cfg, prog, read_hit_cycles=3).execution_time
        assert t1 == t3 == 5


class TestSnoopyUpgrades:
    def test_upgrade_counted_not_missed(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        mem = SnoopyClusterMemorySystem(cfg)
        mem.read(0, 0, now=0)
        mem.write(0, 0, now=200)
        assert mem.counters[0].upgrade_misses == 1
        assert mem.counters[0].write_misses == 0
        assert mem.caches[0].state_of(0) == EXCLUSIVE

    def test_write_hit_on_exclusive(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        mem = SnoopyClusterMemorySystem(cfg)
        mem.write(0, 0, now=0)
        mem.write(0, 0, now=200)
        assert mem.counters[0].hits == 1

    def test_c2c_after_upgrade_then_read(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        mem = SnoopyClusterMemorySystem(cfg)
        mem.write(0, 0, now=0)      # p0 exclusive
        mem.read(1, 0, now=200)     # mate snoops: c2c + downgrade
        assert mem.c2c_transfers == 1
        assert mem.caches[0].state_of(0) == SHARED


class TestSummaries:
    def test_summary_counts_consistent(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        app = build_app("radix", cfg, n_keys=512, radix=16, n_digits=1)
        result = app.run()
        s = summarize(result)
        assert s.references == result.misses.references
        assert s.cold_misses + s.coherence_misses + s.capacity_misses == \
            result.misses.misses
        assert 0.0 <= s.miss_rate <= 1.0
        text = s.format()
        assert "execution time" in text and "cpu" in text


class TestSeedVariation:
    @pytest.mark.parametrize("seed", [1, 7, 99])
    def test_different_seeds_still_correct(self, seed):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=8)
        app = build_app("fft", cfg, n_points=256, seed=seed)
        app.run()
        assert np.allclose(app.result(), app.reference(), atol=1e-8)

    def test_seed_changes_timing(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=2)
        times = set()
        for seed in (1, 2, 3):
            app = build_app("mp3d", cfg, n_particles=200, n_steps=1,
                            seed=seed)
            times.add(app.run().execution_time)
        assert len(times) > 1  # inputs differ, so timing differs
