"""Unit tests for the full-bit-vector directory."""

import pytest

from repro.memory.directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED,
                                    DirEntry, Directory)


class TestDirEntry:
    def test_starts_not_cached(self):
        e = DirEntry()
        assert e.state == NOT_CACHED
        assert e.sharers == 0

    def test_sharer_bitmask(self):
        e = DirEntry()
        e.add_sharer(0)
        e.add_sharer(5)
        assert e.is_sharer(0)
        assert e.is_sharer(5)
        assert not e.is_sharer(3)
        assert e.sharer_list() == [0, 5]

    def test_remove_sharer(self):
        e = DirEntry()
        e.add_sharer(2)
        e.remove_sharer(2)
        assert not e.is_sharer(2)
        assert e.sharers == 0

    def test_only_sharer(self):
        e = DirEntry()
        e.add_sharer(3)
        assert e.only_sharer_is(3)
        e.add_sharer(1)
        assert not e.only_sharer_is(3)

    def test_owner_requires_exclusive(self):
        e = DirEntry()
        e.add_sharer(4)
        with pytest.raises(ValueError):
            _ = e.owner
        e.state = DIR_EXCLUSIVE
        assert e.owner == 4


class TestDirectory:
    def test_entry_created_on_demand(self):
        d = Directory(4)
        assert d.peek(10) is None
        e = d.entry(10)
        assert d.peek(10) is e
        assert len(d) == 1

    def test_read_fill_shares(self):
        d = Directory(4)
        d.record_read_fill(1, cluster=2)
        e = d.peek(1)
        assert e.state == DIR_SHARED
        assert e.sharer_list() == [2]

    def test_multiple_readers_accumulate(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 3)
        assert d.peek(1).sharer_list() == [0, 3]

    def test_record_exclusive_counts_invalidations(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 1)
        d.record_read_fill(1, 2)
        n = d.record_exclusive(1, cluster=1)
        assert n == 2
        e = d.peek(1)
        assert e.state == DIR_EXCLUSIVE
        assert e.owner == 1
        assert d.invalidations_sent == 2

    def test_exclusive_from_not_cached(self):
        d = Directory(4)
        assert d.record_exclusive(7, 3) == 0
        assert d.peek(7).owner == 3

    def test_replacement_hint_clears_bit(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 1)
        d.replacement_hint(1, 0)
        assert d.peek(1).sharer_list() == [1]
        assert d.replacement_hints == 1

    def test_last_hint_returns_to_not_cached(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.replacement_hint(1, 0)
        assert d.peek(1).state == NOT_CACHED

    def test_hint_for_unknown_line_ignored(self):
        d = Directory(4)
        d.replacement_hint(99, 0)  # no crash
        assert d.replacement_hints == 0

    def test_writeback_clears_ownership(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.writeback(1, 2)
        assert d.peek(1).state == NOT_CACHED
        assert d.writebacks == 1

    def test_writeback_wrong_owner_ignored(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.writeback(1, 3)
        assert d.peek(1).state == DIR_EXCLUSIVE

    def test_downgrade_owner(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.downgrade_owner(1, reader=0)
        e = d.peek(1)
        assert e.state == DIR_SHARED
        assert e.sharer_list() == [0, 2]

    def test_downgrade_non_exclusive_raises(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        with pytest.raises(ValueError):
            d.downgrade_owner(1, 1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Directory(0)
