"""Unit tests for the packed-int full-bit-vector directory."""

import pytest

from repro.memory.directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED,
                                    SHARER_SHIFT, Directory)


class TestPackedAccessors:
    def test_absent_line_is_not_cached(self):
        d = Directory(4)
        assert d.state_of(10) == NOT_CACHED
        assert d.sharer_mask(10) == 0
        assert d.sharer_list(10) == []
        assert not d.is_sharer(10, 0)
        assert len(d) == 0

    def test_sharer_bitmask(self):
        d = Directory(8)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 5)
        assert d.is_sharer(1, 0)
        assert d.is_sharer(1, 5)
        assert not d.is_sharer(1, 3)
        assert d.sharer_list(1) == [0, 5]
        assert d.sharer_mask(1) == (1 << 0) | (1 << 5)

    def test_packed_encoding(self):
        d = Directory(4)
        d.record_read_fill(1, 2)
        # state in the low 2 bits, cluster c's bit at position c + SHARER_SHIFT
        assert d.packed[1] == (1 << (2 + SHARER_SHIFT)) | DIR_SHARED

    def test_only_sharer(self):
        d = Directory(4)
        d.record_read_fill(1, 3)
        assert d.only_sharer_is(1, 3)
        d.record_read_fill(1, 1)
        assert not d.only_sharer_is(1, 3)

    def test_owner_requires_exclusive(self):
        d = Directory(8)
        d.record_read_fill(1, 4)
        with pytest.raises(ValueError):
            d.owner_of(1)
        d.record_exclusive(1, 4)
        assert d.owner_of(1) == 4


class TestTransitions:
    def test_read_fill_shares(self):
        d = Directory(4)
        d.record_read_fill(1, cluster=2)
        assert d.state_of(1) == DIR_SHARED
        assert d.sharer_list(1) == [2]

    def test_multiple_readers_accumulate(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 3)
        assert d.sharer_list(1) == [0, 3]

    def test_record_exclusive_counts_invalidations(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 1)
        d.record_read_fill(1, 2)
        n = d.record_exclusive(1, cluster=1)
        assert n == 2
        assert d.state_of(1) == DIR_EXCLUSIVE
        assert d.owner_of(1) == 1
        assert d.invalidations_sent == 2

    def test_exclusive_from_not_cached(self):
        d = Directory(4)
        assert d.record_exclusive(7, 3) == 0
        assert d.owner_of(7) == 3

    def test_replacement_hint_clears_bit(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 1)
        d.replacement_hint(1, 0)
        assert d.sharer_list(1) == [1]
        assert d.replacement_hints == 1

    def test_hint_for_unknown_line_ignored(self):
        d = Directory(4)
        d.replacement_hint(99, 0)  # no crash
        assert d.replacement_hints == 0

    def test_writeback_clears_ownership(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.writeback(1, 2)
        assert d.state_of(1) == NOT_CACHED
        assert d.writebacks == 1

    def test_writeback_wrong_owner_ignored(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.writeback(1, 3)
        assert d.state_of(1) == DIR_EXCLUSIVE

    def test_downgrade_owner(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.downgrade_owner(1, reader=0)
        assert d.state_of(1) == DIR_SHARED
        assert d.sharer_list(1) == [0, 2]

    def test_downgrade_non_exclusive_raises(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        with pytest.raises(ValueError):
            d.downgrade_owner(1, 1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Directory(0)


class TestPruning:
    """Entries whose sharer mask empties are deleted outright, so the
    directory no longer grows without bound on streaming access patterns
    (and ``lines()``/``len()`` no longer over-report dead lines)."""

    def test_last_hint_prunes_entry(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.replacement_hint(1, 0)
        assert d.state_of(1) == NOT_CACHED
        assert 1 not in d.packed
        assert len(d) == 0

    def test_writeback_prunes_entry(self):
        d = Directory(4)
        d.record_exclusive(1, 2)
        d.writeback(1, 2)
        assert 1 not in d.packed
        assert len(d) == 0

    def test_partial_hint_keeps_entry(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.record_read_fill(1, 2)
        d.replacement_hint(1, 0)
        assert 1 in d.packed
        assert len(d) == 1

    def test_lines_reports_only_live_entries(self):
        d = Directory(4)
        for line in range(100):
            d.record_read_fill(line, 0)
            d.replacement_hint(line, 0)
        d.record_read_fill(7, 1)
        assert d.lines() == [7]
        assert len(d) == 1

    def test_streaming_pattern_bounded(self):
        # evict-as-you-go single sharer: the old directory kept one dead
        # entry per line ever touched; the packed directory keeps ~one live
        d = Directory(2)
        for line in range(10_000):
            d.record_read_fill(line, 0)
            if line:
                d.replacement_hint(line - 1, 0)
        assert len(d) == 1

    def test_pruned_line_can_return(self):
        d = Directory(4)
        d.record_read_fill(1, 0)
        d.replacement_hint(1, 0)
        d.record_exclusive(1, 3)
        assert d.state_of(1) == DIR_EXCLUSIVE
        assert d.owner_of(1) == 3
