"""Barnes application tests: octree construction, force accuracy, sharing."""

import numpy as np
import pytest

from repro.apps.barnes import BarnesApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=8, cluster_size=2,
                         cache_kb_per_processor=16)


class TestTree:
    def test_every_body_reachable(self, cfg):
        app = BarnesApp(cfg, n_particles=128, n_steps=1, dt=0.0)
        app.run()
        found = set()
        stack = [0]
        while stack:
            ci = stack.pop()
            for slot in app.cells[ci].children:
                if slot is None:
                    continue
                if slot[0] == "c":
                    stack.append(slot[1])
                else:
                    found.add(slot[1])
        assert found == set(range(128))

    def test_root_mass_is_total_mass(self, cfg):
        app = BarnesApp(cfg, n_particles=128, n_steps=1, dt=0.0)
        app.run()
        assert app.cells[0].mass == pytest.approx(app.mass.sum())

    def test_root_com_matches(self, cfg):
        app = BarnesApp(cfg, n_particles=128, n_steps=1, dt=0.0)
        app.run()
        com = (app.mass[:, None] * app.pos).sum(axis=0) / app.mass.sum()
        assert np.allclose(app.cells[0].com, com)

    def test_tree_shape_independent_of_clustering(self):
        """The region octree is unique for a body set: the number of cells
        must not depend on which processors inserted concurrently."""
        counts = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster)
            app = BarnesApp(cfg, n_particles=128, n_steps=1, dt=0.0)
            app.run()
            counts.append(len(app.cells))
        assert counts[0] == counts[1]

    def test_pool_exhaustion_detected(self, cfg):
        app = BarnesApp(cfg, n_particles=64, n_steps=1)
        app.max_cells = 2
        with pytest.raises(RuntimeError, match="pool"):
            app.run()


class TestForces:
    def test_against_direct_sum(self, cfg):
        app = BarnesApp(cfg, n_particles=256, n_steps=1, dt=0.0, theta=1.0)
        app.run()
        errs = []
        for b in range(0, 256, 5):
            ref = app.direct_acceleration(b)
            errs.append(np.linalg.norm(app.acc[b] - ref)
                        / (np.linalg.norm(ref) + 1e-12))
        assert np.median(errs) < 0.10
        assert max(errs) < 0.5

    def test_smaller_theta_more_accurate(self, cfg):
        def median_err(theta):
            app = BarnesApp(cfg, n_particles=128, n_steps=1, dt=0.0,
                            theta=theta)
            app.run()
            errs = [np.linalg.norm(app.acc[b] - app.direct_acceleration(b))
                    / (np.linalg.norm(app.direct_acceleration(b)) + 1e-12)
                    for b in range(0, 128, 7)]
            return float(np.median(errs))
        assert median_err(0.3) < median_err(1.5)

    def test_bodies_move_with_dt(self, cfg):
        app = BarnesApp(cfg, n_particles=64, n_steps=1, dt=0.05)
        app.ensure_setup()
        p0 = app.pos.copy()
        app.run()
        assert not np.allclose(app.pos, p0)


class TestSharing:
    def test_tree_top_read_shared(self, cfg):
        """Every processor traverses the top of the tree: root cell lines
        must be read by all clusters (the overlapping working set)."""
        app = BarnesApp(cfg, n_particles=256, n_steps=1)
        res = app.run()
        dirent = app and None
        mem_refs = res.misses.references
        assert mem_refs > 256 * 3  # build + com + force traffic

    def test_locks_serialize_tree_build(self, cfg):
        app = BarnesApp(cfg, n_particles=128, n_steps=1)
        res = app.run()
        # some sync time must come from the pool/cell locks or barriers
        assert sum(bd.sync for bd in res.per_processor) > 0

    def test_working_set_overlap_under_small_caches(self):
        """Paper Figure 6: with small caches, clustering reduces capacity
        misses per processor (shared tree top cached once)."""
        from repro.core.metrics import MissCause
        caps = {}
        for cluster in (1, 8):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster,
                                cache_kb_per_processor=1)
            app = BarnesApp(cfg, n_particles=512, n_steps=1)
            res = app.run()
            caps[cluster] = res.misses.by_cause[MissCause.CAPACITY]
        assert caps[8] < caps[1]
