"""Radix application tests: sorting correctness + histogram sharing."""

import numpy as np
import pytest

from repro.apps.radix import RadixApp, _stable_rank_within
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=8, cluster_size=2,
                         cache_kb_per_processor=16)


class TestNumerics:
    def test_sorts_correctly(self, cfg):
        app = RadixApp(cfg, n_keys=2048, radix=16, n_digits=3)
        app.run()
        assert np.array_equal(app.result(), app.reference())

    def test_single_digit(self, cfg):
        app = RadixApp(cfg, n_keys=512, radix=64, n_digits=1)
        app.run()
        assert np.array_equal(app.result(), app.reference())

    def test_radix_larger_than_procs(self, cfg):
        app = RadixApp(cfg, n_keys=1024, radix=256, n_digits=2)
        app.run()
        assert np.array_equal(app.result(), app.reference())

    def test_result_independent_of_clustering(self):
        outs = []
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=8, cluster_size=cluster,
                                cache_kb_per_processor=4)
            app = RadixApp(cfg, n_keys=1024, radix=32, n_digits=2)
            app.run()
            outs.append(app.result())
        assert np.array_equal(outs[0], outs[1])

    def test_stable_rank_within(self):
        digits = np.array([3, 1, 3, 3, 1])
        ranks = _stable_rank_within(digits, 4)
        assert list(ranks) == [0, 0, 1, 2, 1]


class TestStructure:
    def test_keys_must_divide(self, cfg):
        with pytest.raises(ValueError):
            RadixApp(cfg, n_keys=1001)

    def test_digit_slices_partition_radix(self, cfg):
        app = RadixApp(cfg, n_keys=512, radix=64)
        covered = []
        for pid in range(8):
            covered.extend(app._digit_slice(pid))
        assert sorted(covered) == list(range(64))

    def test_permutation_is_all_to_all(self, cfg):
        """Keys scatter across the whole destination array: every cluster
        should take write misses to remote key pages."""
        app = RadixApp(cfg, n_keys=2048, radix=16, n_digits=2)
        res = app.run()
        for ctr in res.per_cluster_misses:
            assert ctr.write_misses > 0

    def test_histograms_heavily_shared(self, cfg):
        """The rank phase reads every processor's histogram row; clustering
        should produce merge activity there (paper: 'significant
        prefetching effects, particularly on the shared histograms')."""
        app = RadixApp(cfg, n_keys=2048, radix=64, n_digits=2)
        res = app.run()
        assert res.misses.merges > 0
