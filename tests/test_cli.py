"""CLI smoke tests (tiny problem sizes via monkeypatched quick presets)."""

import pytest

from repro import cli

TINY = {
    "lu": dict(n=32, block=8),
    "fft": dict(n_points=256),
    "ocean": dict(n=16, n_vcycles=1),
    "barnes": dict(n_particles=64, n_steps=1),
    "fmm": dict(n_particles=64, levels=2, n_steps=1),
    "radix": dict(n_keys=512, radix=16, n_digits=1),
    "raytrace": dict(width=8, height=8, n_spheres=8),
    "volrend": dict(volume_side=8, width=8, height=8, block=2),
    "mp3d": dict(n_particles=64, n_steps=1),
}


@pytest.fixture(autouse=True)
def tiny_quick(monkeypatch):
    monkeypatch.setattr(cli, "QUICK_PROBLEM_SIZES", TINY)


def run_cli(*argv):
    return cli.main(list(argv))


BASE = ["--processors", "8", "--quick"]


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert run_cli(*BASE, "run", "ocean", "--clusters", "2",
                       "--cache", "4") == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "miss rate" in out

    def test_run_infinite_cache(self, capsys):
        assert run_cli(*BASE, "run", "radix") == 0
        assert "execution time" in capsys.readouterr().out

    def test_run_timing_probe_prints_phases(self, capsys):
        assert run_cli(*BASE, "run", "ocean", "--clusters", "2",
                       "--cache", "4", "--probe", "timing",
                       "--no-cache") == 0
        out = capsys.readouterr().out
        assert "execution time" in out          # normal summary intact
        assert "probe: timing" in out
        for phase in ("resolve", "build", "execute", "total"):
            assert phase in out

    def test_run_probe_identical_result(self, capsys):
        assert run_cli(*BASE, "run", "ocean", "--clusters", "2",
                       "--cache", "4", "--no-cache") == 0
        plain = capsys.readouterr().out
        assert run_cli(*BASE, "run", "ocean", "--clusters", "2",
                       "--cache", "4", "--probe", "timing",
                       "--no-cache") == 0
        probed = capsys.readouterr().out
        # the probe adds lines after the summary but never changes it
        # (first line carries wall-clock time, so compare from line 2)
        plain_summary = plain.split("\n", 1)[1]
        assert plain_summary in probed


class TestFigures:
    def test_fig2_subset(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "fig2", "--apps", "radix") == 0
        out = capsys.readouterr().out
        assert "Figure 2 (radix)" in out
        assert "100.0" in out

    def test_fig3(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "fig3") == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig4_capacity(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "--cache-sizes", "1,inf", "fig4") == 0
        out = capsys.readouterr().out
        assert "raytrace" in out
        assert "inf" in out

    def test_ascii_rendering(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "--ascii",
                       "fig2", "--apps", "radix") == 0
        assert "#" in capsys.readouterr().out


class TestTables:
    def test_table1(self, capsys):
        assert run_cli("table1") == 0
        assert "150" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert run_cli("table4") == 0
        assert "0.125" in capsys.readouterr().out

    def test_table5_paper_only(self, capsys):
        assert run_cli("table5") == 0
        assert "1.055" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "table6") == 0
        out = capsys.readouterr().out
        assert "barnes" in out and "mp3d" in out

    def test_table7(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "table7") == 0
        out = capsys.readouterr().out
        assert "ocean" in out and "lu" in out


class TestAnalysis:
    def test_workingset(self, capsys):
        assert run_cli(*BASE, "--cache-sizes", "1,inf",
                       "workingset", "fmm") == 0
        out = capsys.readouterr().out
        assert "miss rate" in out and "knee" in out

    def test_merge_anatomy(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "merge", "radix") == 0
        assert "load+merge" in capsys.readouterr().out


class TestParser:
    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "notanapp")

    def test_command_required(self):
        with pytest.raises(SystemExit):
            run_cli()

    @pytest.mark.parametrize("argv", [
        ["--jobs", "0", "run", "ocean"],
        ["--jobs", "-2", "run", "ocean"],
        ["--timeout", "0", "run", "ocean"],
        ["--timeout", "-1.5", "run", "ocean"],
        ["--processors", "0", "run", "ocean"],
        ["--cluster-sizes", "0,2", "fig2"],
        ["--cluster-sizes", "-1", "fig2"],
        ["--cluster-sizes", "", "fig2"],
        ["--cache-sizes", "0,inf", "fig4"],
        ["--cache-sizes", "-4", "fig4"],
        ["run", "ocean", "--clusters", "0"],
        ["run", "ocean", "--cache", "0"],
        ["run", "ocean", "--cache", "-16"],
        ["run", "ocean", "--cache", "huge"],
    ], ids=["jobs-zero", "jobs-negative", "timeout-zero",
            "timeout-negative", "processors-zero", "cluster-sizes-zero",
            "cluster-sizes-negative", "cluster-sizes-empty",
            "cache-sizes-zero", "cache-sizes-negative", "clusters-zero",
            "cache-zero", "cache-negative", "cache-garbage"])
    def test_nonpositive_resources_rejected(self, argv, capsys):
        """Bad sweep sizes and resources die with a one-line parser error
        (exit code 2), not a traceback from deep inside the executor."""
        with pytest.raises(SystemExit) as exc:
            run_cli(*argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_unknown_app_exit_code_is_2(self, capsys):
        for argv in (["run", "notanapp"],
                     ["fig2", "--apps", "notanapp"],
                     ["workingset", "notanapp"]):
            with pytest.raises(SystemExit) as exc:
                run_cli(*argv)
            assert exc.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_bad_network_load_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "network", "ocean", "--loads", "0,1.5")
        assert exc.value.code == 2


class TestNetwork:
    def test_network_smoke(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "network", "ocean", "--loads", "0,0.6") == 0
        out = capsys.readouterr().out
        assert "calibration check" in out
        assert "load 0.6" in out
        assert "peak util" in out

    def test_network_defaults_to_ocean(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "network", "--loads", "0,0.3") == 0
        assert "ocean" in capsys.readouterr().out


class TestCompareAndTrace:
    def test_compare_organizations(self, capsys):
        assert run_cli(*BASE, "compare", "ocean", "--clusters", "2",
                       "--cache", "4") == 0
        out = capsys.readouterr().out
        assert "shared-cache cluster" in out
        assert "snoopy" in out
        assert "cache-to-cache transfers" in out

    def test_trace_stats(self, capsys):
        assert run_cli(*BASE, "trace", "radix") == 0
        out = capsys.readouterr().out
        assert "references" in out and "footprint" in out

    def test_trace_save(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert run_cli(*BASE, "trace", "radix", "--output",
                       str(out_file)) == 0
        assert out_file.exists()
        from repro.sim.trace import ReferenceTrace
        assert len(ReferenceTrace.load(out_file)) > 0


class TestCapacityFigureCommands:
    def test_fig5_mp3d(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "--cache-sizes", "1,inf", "fig5") == 0
        assert "mp3d" in capsys.readouterr().out

    def test_fig8_volrend(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2",
                       "--cache-sizes", "1,inf", "fig8") == 0
        assert "volrend" in capsys.readouterr().out


class TestForkServer:
    def test_fork_server_sweep_runs(self, capsys):
        from repro.core.executor import fork_available

        if not fork_available():
            pytest.skip("no fork start method")
        assert run_cli(*BASE, "--jobs", "2", "--fork-server", "--no-cache",
                       "--cluster-sizes", "1,2", "fig2",
                       "--apps", "radix") == 0
        assert "Figure 2 (radix)" in capsys.readouterr().out

    def test_fork_server_rejected_without_fork(self, monkeypatch, capsys):
        import repro.cli as climod

        monkeypatch.setattr(climod, "fork_available", lambda: False)
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--jobs", "2", "--fork-server", "--no-cache",
                    "--cluster-sizes", "1,2", "fig2", "--apps", "radix")
        assert exc.value.code == 2
        assert "fork" in capsys.readouterr().err


class TestBatchFlag:
    def test_batched_sweep_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert run_cli(*BASE, "--batch", "--cluster-sizes", "1,2", "fig2",
                       "--apps", "fft") == 0
        assert "Figure 2 (fft)" in capsys.readouterr().out

    def test_batch_refuses_no_cache(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--batch", "--no-cache",
                    "--cluster-sizes", "1,2", "fig2", "--apps", "fft")
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--batch" in err and "--no-cache" in err
        assert "Traceback" not in err

    def test_batch_refuses_per_point_timeout(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--batch", "--timeout", "5",
                    "--cluster-sizes", "1,2", "fig2", "--apps", "fft")
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--timeout" in err
        assert "Traceback" not in err


class TestProtocolFlag:
    def test_run_with_each_protocol(self, capsys):
        times = {}
        for proto in ("directory", "snoopy", "dls"):
            assert run_cli(*BASE, "--protocol", proto, "run", "fft",
                           "--clusters", "2") == 0
            out = capsys.readouterr().out
            times[proto] = out
        # dls pays mandatory remote traffic, so its summary must differ
        assert times["dls"] != times["directory"]

    def test_default_protocol_output_is_unchanged(self, capsys):
        # spelling out the default must be byte-identical to omitting it
        assert run_cli(*BASE, "run", "fft", "--clusters", "2") == 0
        implicit = capsys.readouterr().out
        assert run_cli(*BASE, "--protocol", "directory", "run", "fft",
                       "--clusters", "2") == 0
        assert capsys.readouterr().out == implicit

    def test_unknown_protocol_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--protocol", "mesiv2", "run", "fft")
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_forced_native_with_dls_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--native", "--protocol", "dls", "run", "fft")
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--native" in err and "dls" in err
        assert "Traceback" not in err

    def test_forced_native_with_snoopy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "--native", "--protocol", "snoopy",
                    "--cluster-sizes", "1,2", "fig2", "--apps", "fft")
        assert exc.value.code == 2
        assert "--native" in capsys.readouterr().err


class TestStudyCommand:
    def test_study_prints_figure_and_table(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "study", "fft") == 0
        out = capsys.readouterr().out
        assert "Cross-protocol comparison: fft" in out
        for proto in ("directory", "snoopy", "dls"):
            assert proto in out
        assert "vs directory" in out

    def test_study_subset_always_keeps_directory_baseline(self, capsys):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "study", "fft",
                       "--protocols", "dls") == 0
        out = capsys.readouterr().out
        assert "dls" in out and "directory" in out
        assert "snoopy" not in out

    def test_study_honours_global_protocol_focus(self, capsys):
        assert run_cli(*BASE, "--protocol", "dls", "--cluster-sizes", "1,2",
                       "study", "fft", "--protocols", "snoopy") == 0
        out = capsys.readouterr().out
        assert "dls" in out and "snoopy" in out and "directory" in out

    def test_study_rejects_unknown_protocol_list(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(*BASE, "study", "fft", "--protocols", "mesiv2")
        assert exc.value.code == 2
        assert "mesiv2" in capsys.readouterr().err

    def test_study_served_matches_local(self, capsys, serve_daemon):
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "study", "fft",
                       "--protocols", "directory,dls") == 0
        local = capsys.readouterr().out
        assert run_cli(*BASE, "--cluster-sizes", "1,2", "study", "fft",
                       "--protocols", "directory,dls", "--server",
                       f"127.0.0.1:{serve_daemon.port}") == 0
        served = capsys.readouterr().out
        assert served == local

    def test_study_bad_server_spec_exits_2(self, capsys):
        assert run_cli(*BASE, "study", "fft", "--server", "nowhere") == 2
        assert "--server" in capsys.readouterr().err
