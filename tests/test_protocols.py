"""Protocol-seam tests: registry, DLS oracle parity, cache-key guards.

Three layers of coverage for the pluggable-protocol refactor:

* the registry in :mod:`repro.memory` is the single construction seam —
  it covers every declared protocol name, rejects undeclared ones, and
  the package-level ``SnoopyClusterMemorySystem`` alias warns about
  bypassing it;
* the ``"dls"`` backend is pinned against its object-per-line oracle
  (:class:`repro.memory.refmodel.RefDLSMemorySystem`) on hypothesis-
  generated access streams — outcome tags, stall cycles, counters,
  classification, write-backs, slice contents, and LRU victim choice
  must agree step for step;
* cache-key collision guards: two runs differing only in ``protocol``
  must produce distinct ``point_key``\\ s, never share a result-cache
  entry, and (for the timing-dynamic apps) never share a compiled-trace
  entry — while stream-invariant apps *do* share the trace across
  protocols by design, because the reference stream is protocol-free.
"""

import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.memory as memory_pkg
from repro.core.config import PROTOCOLS, MachineConfig
from repro.core.metrics import MissCause
from repro.core.resultcache import ResultCache, point_key
from repro.memory import (CoherentMemorySystem, DLSMemorySystem,
                          PROTOCOL_REGISTRY, make_memory_system,
                          register_protocol)
from repro.memory.allocation import PageAllocator
from repro.memory.refmodel import RefDLSMemorySystem
from repro.memory.snoopy import SnoopyClusterMemorySystem
from repro.sim.compiled import trace_key

# ---------------------------------------------------------------- config


class TestConfigProtocolAxis:
    def test_default_is_directory(self):
        assert MachineConfig().protocol == "directory"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown coherence protocol"):
            MachineConfig(protocol="mesiv2")

    def test_with_protocol_variant(self):
        cfg = MachineConfig().with_protocol("dls")
        assert cfg.protocol == "dls"
        assert MachineConfig().protocol == "directory"  # original untouched

    def test_to_dict_carries_protocol(self):
        for proto in PROTOCOLS:
            assert MachineConfig(
                protocol=proto).to_dict()["protocol"] == proto

    def test_describe_mentions_only_non_default(self):
        # golden runtime output under the default protocol must not change
        assert "directory" not in MachineConfig().describe()
        assert "dls" in MachineConfig(protocol="dls").describe()


# -------------------------------------------------------------- registry


class TestProtocolRegistry:
    def test_registry_covers_every_declared_protocol(self):
        assert set(PROTOCOL_REGISTRY) == set(PROTOCOLS)

    def test_make_memory_system_dispatches_on_protocol(self):
        expected = {"directory": CoherentMemorySystem,
                    "snoopy": SnoopyClusterMemorySystem,
                    "dls": DLSMemorySystem}
        for proto, cls in expected.items():
            cfg = MachineConfig(n_processors=4, protocol=proto)
            assert type(make_memory_system(cfg)) is cls

    def test_register_protocol_rejects_undeclared_names(self):
        with pytest.raises(ValueError, match="not declared"):
            register_protocol("token-ring", CoherentMemorySystem)

    def test_register_protocol_substitutes_declared_backend(self):
        original = PROTOCOL_REGISTRY["dls"]

        class Instrumented(DLSMemorySystem):
            pass

        try:
            register_protocol("dls", Instrumented)
            cfg = MachineConfig(n_processors=4, protocol="dls")
            assert type(make_memory_system(cfg)) is Instrumented
        finally:
            register_protocol("dls", original)

    def test_package_level_snoopy_alias_warns(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2)
        with pytest.warns(DeprecationWarning, match="make_memory_system"):
            memory_pkg.SnoopyClusterMemorySystem(cfg)

    def test_module_level_snoopy_class_stays_silent(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SnoopyClusterMemorySystem(cfg)  # probes import the module class

    def test_registry_construction_does_not_warn(self):
        cfg = MachineConfig(n_processors=4, protocol="snoopy")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_memory_system(cfg)


# ------------------------------------------------- dls vs refmodel oracle

_shapes = st.sampled_from([
    # (n_processors, cluster_size, cache_kb)
    (2, 1, 0.0625), (4, 2, 0.0625), (4, 2, 0.125), (8, 4, 0.125),
    (4, 1, None), (8, 2, None), (4, 4, 0.0625),
])

_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "retry"]),
              st.integers(0, 7),       # processor (mod n below)
              st.integers(0, 63),      # line
              st.integers(0, 40)),     # time advance
    max_size=300)


def _assert_step_parity(prod, ref, config):
    for cluster, (pc, rc) in enumerate(zip(prod.counters, ref.counters)):
        assert pc.reads == rc["reads"]
        assert pc.writes == rc["writes"]
        assert pc.read_misses == rc["read_misses"]
        assert pc.write_misses == rc["write_misses"]
        assert pc.merges == rc["merges"]
        assert pc.merge_refetches == rc["merge_refetches"]
        assert pc.prefetch_hits == rc["prefetch_hits"]
        assert pc.by_cause[MissCause.COLD] == rc["cold"]
        assert pc.by_cause[MissCause.COHERENCE] == rc["coherence"]
        assert pc.by_cause[MissCause.CAPACITY] == rc["capacity"]
    assert prod.writebacks == ref.writebacks
    for cluster in range(config.n_clusters):
        # same resident lines in the same LRU order = same victim choice
        assert (prod.caches[cluster].resident_lines()
                == ref.slices[cluster].resident_lines())


@settings(max_examples=150, deadline=None)
@given(shape=_shapes, ops=_ops)
def test_dls_matches_refmodel_oracle(shape, ops):
    n_proc, csize, cache_kb = shape
    config = MachineConfig(n_processors=n_proc, cluster_size=csize,
                           cache_kb_per_processor=cache_kb, protocol="dls")
    allocator = PageAllocator(config.n_clusters, config.page_size,
                              config.line_size)
    prod = DLSMemorySystem(config, allocator)
    ref = RefDLSMemorySystem(config, allocator)
    now = 0
    for kind, proc, line, dt in ops:
        proc %= n_proc
        now += dt
        if kind == "write":
            prod.write(proc, line, now)
            ref.write(proc, line, now)
        else:
            retry = kind == "retry"
            got = prod.read(proc, line, now, retry)
            want = ref.read(proc, line, now, retry)
            assert tuple(got) == tuple(want)
        _assert_step_parity(prod, ref, config)
    prod.check_invariants()


def test_dls_invariant_every_resident_line_is_home(seeded=11):
    """Long random drive, then the defining DLS invariant must hold."""
    rng = random.Random(seeded)
    config = MachineConfig(n_processors=8, cluster_size=2,
                           cache_kb_per_processor=0.125, protocol="dls")
    mem = make_memory_system(config)
    now = 0
    for _ in range(5000):
        now += rng.randrange(10)
        if rng.random() < 0.3:
            mem.write(rng.randrange(8), rng.randrange(512), now)
        else:
            mem.read(rng.randrange(8), rng.randrange(512), now)
    mem.check_invariants()
    agg = mem.aggregate_counters()
    assert agg.reads and agg.writes and agg.read_misses
    # single cached copy per line: upgrade misses cannot exist
    assert agg.upgrade_misses == 0


# ------------------------------------------------------------ native gate


class TestNativeGate:
    def test_try_replay_native_declines_non_directory_protocols(self):
        from repro.sim.nativereplay import NATIVE_PROTOCOLS, try_replay_native

        assert NATIVE_PROTOCOLS == frozenset({"directory"})
        config = MachineConfig(n_processors=4, protocol="dls")
        # the protocol gate precedes every other check, so the dummies
        # must never be touched — a non-None return or an attribute
        # error would mean the gate moved
        assert try_replay_native(config, app=None, program=None) is None
        config = MachineConfig(n_processors=4, protocol="snoopy")
        assert try_replay_native(config, app=None, program=None) is None

    def test_fused_kernels_decline_non_directory_memory(self):
        from repro.sim.batch.engine import fusible
        from repro.sim.nativereplay import native_fusible

        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4.0)
        assert not fusible(make_memory_system(cfg.with_protocol("dls")))
        assert not native_fusible(make_memory_system(
            cfg.with_protocol("dls")))
        assert not fusible(make_memory_system(cfg.with_protocol("snoopy")))


# ----------------------------------------------------- cache-key guards

TINY_OCEAN = dict(n=16, n_vcycles=1)


class TestCacheKeyCollisionGuard:
    def test_point_keys_differ_by_protocol_only(self):
        base = MachineConfig(n_processors=8, cluster_size=2,
                             cache_kb_per_processor=4.0)
        keys = {point_key("ocean", TINY_OCEAN, base.with_protocol(p))
                for p in PROTOCOLS}
        assert len(keys) == len(PROTOCOLS)
        # and the default-protocol key is byte-stable against the
        # explicit spelling of the default
        assert (point_key("ocean", TINY_OCEAN, base)
                == point_key("ocean", TINY_OCEAN,
                             base.with_protocol("directory")))

    def test_trace_keys_differ_by_protocol_for_dynamic_apps(self):
        base = MachineConfig(n_processors=8)
        dynamic = {trace_key("barnes", {"n_particles": 64},
                             base.with_protocol(p), seed=0,
                             stream_invariant=False)
                   for p in PROTOCOLS}
        assert len(dynamic) == len(PROTOCOLS)

    def test_stream_invariant_traces_shared_across_protocols(self):
        # the reference stream of an invariant app is protocol-free, so
        # sharing the compiled trace across protocols is by design
        base = MachineConfig(n_processors=8)
        invariant = {trace_key("ocean", TINY_OCEAN, base.with_protocol(p),
                               seed=0, stream_invariant=True)
                     for p in PROTOCOLS}
        assert len(invariant) == 1

    def test_result_cache_never_shares_entries_across_protocols(
            self, tmp_path):
        from repro.core.executor import PointSpec, SweepExecutor

        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        base = MachineConfig(n_processors=8)
        spec_dir = PointSpec.make("ocean", 2, 4.0, TINY_OCEAN)
        spec_dls = PointSpec.make("ocean", 2, 4.0, TINY_OCEAN,
                                  protocol="dls")

        first = executor.run_one(spec_dir, base)
        assert cache.hits == 0 and cache.misses == 1
        crossed = executor.run_one(spec_dls, base)
        # differing only in protocol: must miss, must execute, and must
        # produce a different result (DLS pays mandatory remote traffic)
        assert cache.hits == 0 and cache.misses == 2
        assert (crossed.result.execution_time
                != first.result.execution_time)

        again = executor.run_one(spec_dls, base)
        assert cache.hits == 1  # the honest hit: identical protocol
        assert again.result.to_json() == crossed.result.to_json()

    def test_daemon_stats_stay_honest_across_protocols(self, serve_daemon):
        from repro.runtime import RunRequest

        stats0 = serve_daemon.service.stats_dict()
        with serve_daemon.client() as client:
            r_dir = client.run_point(
                RunRequest.make("ocean", 2, 4.0, TINY_OCEAN))
            r_dls = client.run_point(
                RunRequest.make("ocean", 2, 4.0, TINY_OCEAN,
                                protocol="dls"))
            r_dls_again = client.run_point(
                RunRequest.make("ocean", 2, 4.0, TINY_OCEAN,
                                protocol="dls"))
        assert r_dir.key != r_dls.key
        assert r_dls_again.key == r_dls.key
        assert not r_dir.cached and not r_dls.cached  # distinct executions
        assert r_dls_again.cached  # the honest hit
        assert (r_dls.result.execution_time
                != r_dir.result.execution_time)
        stats = serve_daemon.service.stats_dict()
        assert stats["executed"] >= stats0["executed"] + 2
        assert stats["cache_hits"] >= stats0["cache_hits"] + 1


# ------------------------------------------------------- protocol sweep


class TestProtocolSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.core.study import ClusteringStudy

        study = ClusteringStudy("ocean", MachineConfig(n_processors=8),
                                dict(TINY_OCEAN))
        return study.protocol_sweep(PROTOCOLS, (1, 2), cache_kb=4.0)

    def test_grid_shape_and_protocol_effects(self, sweep):
        assert set(sweep) == {(p, c) for p in PROTOCOLS for c in (1, 2)}
        times = {k: pt.execution_time for k, pt in sweep.items()}
        # all three protocols simulate; DLS's mandatory remote traffic
        # makes it strictly slower than the directory at every cluster
        for c in (1, 2):
            assert times[("dls", c)] > times[("directory", c)]

    def test_directory_column_matches_cluster_sweep(self, sweep):
        from repro.core.study import ClusteringStudy

        study = ClusteringStudy("ocean", MachineConfig(n_processors=8),
                                dict(TINY_OCEAN))
        plain = study.cluster_sweep(4.0, (1, 2))
        for c in (1, 2):
            assert (sweep[("directory", c)].result.to_json()
                    == plain[c].result.to_json())

    def test_figure_from_protocol_sweep(self, sweep):
        from repro.analysis import figure_from_protocol_sweep

        fig = figure_from_protocol_sweep("cross-protocol", sweep)
        assert [g.label for g in fig.groups] == list(PROTOCOLS)
        assert all(len(g.bars) == 2 for g in fig.groups)
        # global baseline: directory @ 1p is the 100% bar
        assert fig.bar("directory", "1p").total == pytest.approx(100.0)
        assert fig.bar("dls", "1p").total > 100.0

    def test_render_protocol_comparison(self, sweep):
        from repro.analysis import render_protocol_comparison

        table = render_protocol_comparison(sweep, "ocean: protocols")
        for proto in PROTOCOLS:
            assert proto in table
        assert "vs directory" in table
        assert "1.000" in table
