"""Streaming traces: the mmappable v2 format, chunked replay, byte budget.

The contract of the out-of-core trace layer is that *where the columns
live is unobservable*: a program decoded eagerly from the legacy zlib v1
format, decoded eagerly from v2 bytes, or memory-mapped and consumed
through chunked windows must replay to byte-identical results.  These
tests pin that contract, the corruption-degrades-to-miss behaviour the
cache relies on, and the byte-budget LRU accounting that makes mapped
traces ~free to keep resident.
"""

import array
import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.executor import PointSpec, evaluate_point
from repro.core.resultcache import TraceStore
from repro.sim.compiled import (ENV_TRACE_LRU_BYTES, ENV_TRACE_MMAP,
                                CompiledProgram, TraceCache,
                                TraceDecodeError, clear_memory_cache,
                                memory_cache_bytes, trace_cache_info,
                                trace_key)

from test_compiled import TINY_SIZES, capture

INT64 = st.integers(-(2 ** 63), 2 ** 63 - 1)


def make_program(columns, line_size=32):
    """A CompiledProgram over explicit per-processor (ops, args) columns."""
    ops = [array.array("q", c[0]) for c in columns]
    args = [array.array("q", c[1]) for c in columns]
    total = sum(len(c) for c in ops)
    return CompiledProgram(ops, args, line_size,
                           source_ops=total, fused_work=False)


def columns_of(program):
    """Fully boxed (ops, args) per processor, whatever the backing."""
    return [([int(v) for v in o], [int(v) for v in a])
            for o, a in zip(*program.runtime_columns())]


@st.composite
def column_sets(draw):
    n_proc = draw(st.integers(1, 4))
    cols = []
    for _ in range(n_proc):
        n = draw(st.integers(0, 40))
        cols.append((draw(st.lists(INT64, min_size=n, max_size=n)),
                     draw(st.lists(INT64, min_size=n, max_size=n))))
    return cols


class TestFormatRoundTrip:
    """v1 (legacy zlib) and v2 (mmappable) encode/decode equivalence."""

    @given(columns=column_sets())
    @settings(max_examples=40, deadline=None)
    def test_v1_v2_decode_equal(self, columns):
        program = make_program(columns)
        via_v1 = CompiledProgram.from_bytes(program.to_bytes(version=1))
        via_v2 = CompiledProgram.from_bytes(program.to_bytes())
        assert columns_of(via_v1) == columns_of(via_v2) == columns
        for decoded in (via_v1, via_v2):
            assert decoded.n_processors == program.n_processors
            assert decoded.line_size == program.line_size
            assert decoded.source_ops == program.source_ops
            assert decoded.fused_work == program.fused_work
            assert not decoded.mapped

    @given(columns=column_sets())
    @settings(max_examples=20, deadline=None)
    def test_mapped_file_decode_equal(self, columns, tmp_path_factory):
        program = make_program(columns)
        path = tmp_path_factory.mktemp("blob") / "t.trace"
        path.write_bytes(program.to_bytes())
        mapped = CompiledProgram.from_file(path)
        assert mapped.mapped
        assert columns_of(mapped) == columns
        eager = CompiledProgram.from_file(path, mmap_ok=False)
        assert not eager.mapped
        assert columns_of(eager) == columns

    def test_v2_blob_is_uncompressed_and_aligned(self):
        program = make_program([([1, 2, 3], [4, 5, 6])])
        blob = program.to_bytes()
        assert blob[:8] == b"RPROTRC2"
        # payload: 2 columns x 3 int64 at an 8-aligned offset
        payload = array.array("q", [1, 2, 3, 4, 5, 6])
        if sys.byteorder == "big":
            payload.byteswap()
        assert blob.endswith(payload.tobytes())
        assert (len(blob) - 6 * 8) % 8 == 0

    def test_chunked_windows_match_boxed(self, tmp_path):
        n = 10_000  # several 4096-entry chunks per column
        vals = list(range(n))
        program = make_program([(vals, vals[::-1])])
        path = tmp_path / "t.trace"
        path.write_bytes(program.to_bytes())
        mapped = CompiledProgram.from_file(path)
        ops_cols, args_cols = mapped.runtime_columns()
        assert len(ops_cols[0]) == n
        assert list(ops_cols[0]) == vals
        assert list(args_cols[0]) == vals[::-1]
        assert [ops_cols[0][i] for i in (0, 4095, 4096, n - 1)] == \
            [0, 4095, 4096, n - 1]


class TestCorruption:
    """Damaged blobs degrade to cache misses, never wrong results."""

    def _store_with_blob(self, tmp_path, blob):
        store = TraceStore(tmp_path)
        store.put_bytes("deadbeef", blob)
        return store

    @pytest.mark.parametrize("mutilate", [
        lambda b: b[: len(b) // 2],          # truncated payload
        lambda b: b[:11],                    # truncated header
        lambda b: b"RPROTRC9" + b[8:],       # wrong magic
        lambda b: b + b"\0" * 8,             # trailing garbage
        lambda b: b"",                       # empty file
    ])
    def test_mapped_corruption_is_a_miss_with_warning(self, tmp_path,
                                                      mutilate):
        good = make_program([([1, 2], [3, 4])]).to_bytes()
        store = self._store_with_blob(tmp_path, mutilate(good))
        cache = TraceCache(store)
        with pytest.warns(UserWarning, match="corrupt compiled trace"):
            assert cache.get("deadbeef") is None
        assert cache.misses == 1

    def test_every_truncation_fails_structurally(self, tmp_path):
        blob = make_program([([7, 8, 9], [1, 2, 3])]).to_bytes()
        path = tmp_path / "t.trace"
        for cut in range(len(blob)):
            path.write_bytes(blob[:cut])
            with pytest.raises((TraceDecodeError, OSError)):
                CompiledProgram.from_file(path)

    def test_flipped_payload_bit_caught_eagerly(self):
        blob = bytearray(make_program([([1, 2], [3, 4])]).to_bytes())
        blob[-1] ^= 0x40
        # the eager decoder reads every byte, so the CRC must catch it
        with pytest.raises(TraceDecodeError):
            CompiledProgram.from_bytes(bytes(blob))


class TestReplayIdentity:
    """Mapped replay is byte-identical to materialized, all nine apps."""

    @pytest.mark.parametrize("name", sorted(TINY_SIZES))
    def test_mapped_vs_materialized(self, name, tmp_path, monkeypatch):
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        spec = PointSpec.make(name, 2, 4.0, dict(TINY_SIZES[name]))
        store = TraceStore(tmp_path)

        monkeypatch.setenv(ENV_TRACE_MMAP, "0")
        clear_memory_cache()
        captured = evaluate_point(spec, cfg,
                                  trace_cache=TraceCache(store)).to_json()
        clear_memory_cache()
        materialized = evaluate_point(spec, cfg,
                                      trace_cache=TraceCache(store))

        monkeypatch.setenv(ENV_TRACE_MMAP, "1")
        clear_memory_cache()
        cache = TraceCache(store)
        mapped = evaluate_point(spec, cfg, trace_cache=cache)
        assert cache.disk_hits == 1  # really served from the v2 blob
        info = trace_cache_info()
        assert info["mapped_entries"] == 1

        assert mapped.to_json() == materialized.to_json() == captured
        clear_memory_cache()

    def test_capture_pass_equals_mapped_disk_pass(self, tmp_path,
                                                  monkeypatch):
        """The first (capture) pass and a later mapped pass agree."""
        monkeypatch.setenv(ENV_TRACE_MMAP, "1")
        cfg = MachineConfig(n_processors=4, cluster_size=2)
        spec = PointSpec.make("lu", 2, None, dict(TINY_SIZES["lu"]))
        store = TraceStore(tmp_path)
        clear_memory_cache()
        first = evaluate_point(spec, cfg, trace_cache=TraceCache(store))
        clear_memory_cache()
        second = evaluate_point(spec, cfg, trace_cache=TraceCache(store))
        assert first.to_json() == second.to_json()
        clear_memory_cache()


class TestByteBudget:
    """The in-memory LRU charges resident bytes, not entries."""

    def _programs(self, cfg, names=("lu", "fft")):
        return {n: capture(n, cfg) for n in names}

    def test_materialized_bytes_counted_and_evicted(self, cfg4,
                                                    monkeypatch):
        programs = self._programs(cfg4)
        nbytes = {n: p.resident_nbytes for n, p in programs.items()}
        assert all(v > 0 for v in nbytes.values())
        # a budget that fits exactly one of the two programs
        budget = max(nbytes.values())
        monkeypatch.setenv(ENV_TRACE_LRU_BYTES, str(budget))
        clear_memory_cache()
        cache = TraceCache()
        for name, program in programs.items():
            cache.put(trace_key(name, TINY_SIZES[name], cfg4, 12345),
                      program)
        info = trace_cache_info()
        assert info["entries"] == 1  # the first program was evicted
        assert info["budget_bytes"] == budget
        assert memory_cache_bytes() <= budget
        clear_memory_cache()

    def test_overbudget_single_entry_survives(self, cfg4, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_LRU_BYTES, "1")
        clear_memory_cache()
        cache = TraceCache()
        program = capture("lu", cfg4)
        cache.put(trace_key("lu", TINY_SIZES["lu"], cfg4, 12345), program)
        # eviction never empties the cache below one live entry
        assert trace_cache_info()["entries"] == 1
        clear_memory_cache()

    def test_mapped_entry_is_nearly_free(self, cfg4, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv(ENV_TRACE_MMAP, "1")
        program = capture("lu", cfg4)
        store = TraceStore(tmp_path)
        key = trace_key("lu", TINY_SIZES["lu"], cfg4, 12345)
        store.put_bytes(key, program.to_bytes())
        clear_memory_cache()
        cache = TraceCache(store)
        mapped = cache.get(key)
        assert mapped is not None and mapped.mapped
        info = trace_cache_info()
        assert info["mapped_entries"] == 1
        assert info["resident_bytes"] < 64 * 1024
        assert info["payload_bytes"] >= program.resident_nbytes
        clear_memory_cache()

    def test_legacy_entry_count_knob_still_respected(self, cfg4,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LRU", "1")
        monkeypatch.delenv(ENV_TRACE_LRU_BYTES, raising=False)
        clear_memory_cache()
        cache = TraceCache()
        for name, program in self._programs(cfg4).items():
            cache.put(trace_key(name, TINY_SIZES[name], cfg4, 12345),
                      program)
        assert trace_cache_info()["entries"] == 1
        clear_memory_cache()


@pytest.mark.medium
class TestPaperScale:
    """Paper-scale smoke: the workload the streaming layer exists for."""

    def test_lu_512_mapped_replay_bounded_rss(self, tmp_path):
        """512x512 LU replays through the mapping under a firm RSS lid.

        Capture and measurement run in fresh child processes because
        ``ru_maxrss`` is a process-lifetime high-water mark; the mapped
        child must stay under an absolute ceiling *and* under the
        materialized child's peak.
        """
        payload = {"app": "lu", "cluster_size": 4, "cache_kb": 4.0,
                   "kwargs": {"n": 512, "block": 16}, "n_processors": 64,
                   "store_dir": str(tmp_path), "mode": "capture"}

        def child(payload, mmap_flag):
            env = os.environ.copy()
            env["PYTHONPATH"] = str(
                Path(__file__).resolve().parent.parent / "src")
            env["REPRO_TRACE_MMAP"] = mmap_flag
            env["REPRO_NATIVE"] = "0"
            proc = subprocess.run(
                [sys.executable, "-m", "repro.core.bench", "--trace-child",
                 json.dumps(payload)],
                capture_output=True, text=True, env=env, check=True)
            return json.loads(proc.stdout)

        captured = child(payload, "1")
        blob = next(Path(tmp_path, "traces").glob("*.trace"))
        assert blob.stat().st_size > 20e6  # genuinely paper-scale

        payload = dict(payload, mode="measure", blob=str(blob))
        mapped = child(payload, "1")
        materialized = child(payload, "0")

        assert mapped["result"] == materialized["result"] \
            == captured["result"]
        # the mapped child never boxes the whole trace: firm absolute
        # ceiling (the trace alone is ~46 MB; boxing it costs hundreds)
        assert mapped["maxrss_kb"] < 250 * 1024
        assert mapped["maxrss_kb"] < materialized["maxrss_kb"]


def test_module_hygiene():
    """No test above leaks LRU state into the rest of the suite."""
    clear_memory_cache()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert trace_cache_info()["entries"] == 0
