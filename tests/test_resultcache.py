"""Correctness of the persistent result cache.

The dangerous failure modes of a memoizing harness are (a) serving a stale
result for a configuration that actually changed and (b) crashing on a
damaged cache file.  These tests pin the key's sensitivity to *every*
simulation input and the corrupt-entry-is-a-miss contract.
"""

import json

import pytest

from repro.core.config import LatencyModel, MachineConfig, NetworkConfig
from repro.core.executor import PointSpec, SweepExecutor
from repro.core.metrics import (MissCause, MissCounters, RunResult,
                                TimeBreakdown)
from repro.core.resultcache import (ENV_CACHE_DIR, ResultCache,
                                    default_cache_dir, point_key)

CFG = MachineConfig(n_processors=8)
OCEAN_KW = {"n": 16, "n_vcycles": 1}


def tiny_result() -> RunResult:
    counters = MissCounters(reads=6, writes=4,
                            read_misses=1, write_misses=1)
    counters.record_cause(MissCause.COLD)
    counters.record_cause(MissCause.COLD)
    return RunResult(execution_time=123,
                     breakdown=TimeBreakdown(100, 20, 2, 1),
                     per_processor=[TimeBreakdown(100, 20, 2, 1)],
                     misses=counters,
                     per_cluster_misses=[counters])


# ------------------------------------------------------------------- keys


class TestKeySensitivity:
    def test_stable_for_identical_inputs(self):
        assert point_key("ocean", OCEAN_KW, CFG) == \
            point_key("ocean", dict(OCEAN_KW), MachineConfig(n_processors=8))

    def test_app_name_changes_key(self):
        assert point_key("ocean", {}, CFG) != point_key("lu", {}, CFG)

    def test_app_kwarg_changes_key(self):
        assert point_key("ocean", {"n": 16}, CFG) != \
            point_key("ocean", {"n": 32}, CFG)
        assert point_key("ocean", {}, CFG) != \
            point_key("ocean", {"n": 16}, CFG)

    @pytest.mark.parametrize("variant", [
        MachineConfig(n_processors=16),
        MachineConfig(n_processors=8, cluster_size=2),
        MachineConfig(n_processors=8, cache_kb_per_processor=4),
        MachineConfig(n_processors=8, associativity=2),
        MachineConfig(n_processors=8, line_size=32),
        MachineConfig(n_processors=8, page_size=8192),
        MachineConfig(n_processors=8,
                      latency=LatencyModel(remote_clean=120)),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(provider="mesh")),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(topology="crossbar")),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(wire_cycles=2)),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(router_cycles=2)),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(directory_cycles=10)),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(background_load=0.3)),
        MachineConfig(n_processors=8,
                      network=NetworkConfig(contention=False)),
    ], ids=["processors", "cluster", "cache", "assoc", "line", "page",
            "latency", "net-provider", "net-topology", "net-wire",
            "net-router", "net-directory", "net-load", "net-contention"])
    def test_every_config_field_changes_key(self, variant):
        """No MachineConfig field may be invisible to the cache key."""
        assert point_key("ocean", {}, CFG) != point_key("ocean", {}, variant)

    def test_version_changes_key(self):
        assert point_key("ocean", {}, CFG, version="1.0.0") != \
            point_key("ocean", {}, CFG, version="1.0.1")

    def test_kwarg_order_does_not_change_key(self):
        assert point_key("ocean", {"a": 1, "b": 2}, CFG) == \
            point_key("ocean", {"b": 2, "a": 1}, CFG)


# -------------------------------------------------------------- directory


class TestDirectoryResolution:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ResultCache().directory == tmp_path / "custom"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert default_cache_dir().name == "repro-clustering"

    def test_explicit_argument_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
        cache = ResultCache(tmp_path / "arg")
        assert cache.directory == tmp_path / "arg"


# ----------------------------------------------------------------- get/put


class TestGetPut:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = tiny_result()
        key = cache.key("ocean", OCEAN_KW, CFG)
        assert cache.get(key) is None  # cold
        cache.put(key, result)
        assert key in cache
        assert cache.get(key) == result
        assert (cache.hits, cache.misses) == (1, 1)

    def test_missing_directory_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path / "never" / "created")
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    @pytest.mark.parametrize("damage", [
        lambda text: "",                             # empty file
        lambda text: text[: len(text) // 2],         # truncated write
        lambda text: "definitely not json {",        # garbage
        lambda text: json.dumps({"wrong": "shape"}),  # missing result
        lambda text: json.dumps({"result": {"execution_time": "NaNsense"}}),
    ], ids=["empty", "truncated", "garbage", "wrong-shape", "bad-values"])
    def test_corrupt_entry_is_miss_then_rewritten(self, tmp_path, damage):
        cache = ResultCache(tmp_path)
        result = tiny_result()
        key = cache.key("ocean", OCEAN_KW, CFG)
        cache.put(key, result)
        path = cache.path_for(key)
        path.write_text(damage(path.read_text()))
        assert cache.get(key) is None           # corrupt → miss, no raise
        cache.put(key, result)                   # harness re-runs + rewrites
        assert cache.get(key) == result

    def test_put_is_atomic_no_tmp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, tiny_result())
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"key{i}", tiny_result())
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_put_swallows_unwritable_storage(self, tmp_path, monkeypatch):
        # can't rely on chmod (tests may run as root) — fail the temp file
        import tempfile

        def denied(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(tempfile, "mkstemp", denied)
        cache = ResultCache(tmp_path)
        cache.put("x" * 64, tiny_result())  # must not raise
        assert cache.get("x" * 64) is None


# ------------------------------------------------------- executor coupling


class TestExecutorCoupling:
    def test_hits_skip_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        specs = [PointSpec.make("ocean", c, None, OCEAN_KW)
                 for c in (1, 2)]
        first = executor.run(specs, CFG)
        assert [o.cached for o in first] == [False, False]
        second = executor.run(specs, CFG)
        assert [o.cached for o in second] == [True, True]
        assert cache.stats() == "2 hits, 2 misses"

    def test_no_cache_executor_never_touches_disk(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "cachedir"))
        executor = SweepExecutor(cache=None)
        executor.run([PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG)
        executor.run([PointSpec.make("ocean", 1, None, OCEAN_KW)], CFG)
        assert not (tmp_path / "cachedir").exists()

    def test_failed_points_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        executor.run([PointSpec.make("notanapp", 1, None, {})], CFG)
        assert len(cache) == 0
        again = executor.run([PointSpec.make("notanapp", 1, None, {})], CFG)
        assert not again[0].ok and not again[0].cached

    def test_different_base_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        spec = PointSpec.make("ocean", 1, None, OCEAN_KW)
        executor.run([spec], CFG)
        executor.run([spec], MachineConfig(n_processors=4))
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 2


# -------------------------------------------------------------------- CLI


class TestCLIFlags:
    def run_cli(self, *argv):
        from repro import cli
        return cli.main(list(argv))

    BASE = ("--processors", "8", "--cluster-sizes", "1,2")
    RUN = ("fig2", "--apps", "ocean")

    @pytest.fixture(autouse=True)
    def tiny_quick(self, monkeypatch):
        from repro import cli
        monkeypatch.setattr(
            cli, "QUICK_PROBLEM_SIZES", {"ocean": dict(OCEAN_KW)})

    def test_second_invocation_hits(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "c"))
        assert self.run_cli(*self.BASE, "--quick", *self.RUN) == 0
        err = capsys.readouterr().err
        assert "0 hits, 2 misses" in err
        assert self.run_cli(*self.BASE, "--quick", *self.RUN) == 0
        assert "2 hits, 0 misses" in capsys.readouterr().err

    def test_no_cache_flag_bypasses_reads_and_writes(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "c"))
        assert self.run_cli(*self.BASE, "--quick", "--no-cache",
                            *self.RUN) == 0
        captured = capsys.readouterr()
        assert "result cache" not in captured.err
        assert not (tmp_path / "c").exists()

    def test_cache_dir_flag_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
        assert self.run_cli(*self.BASE, "--quick", "--cache-dir",
                            str(tmp_path / "flag"), *self.RUN) == 0
        assert (tmp_path / "flag").exists()
        assert not (tmp_path / "env").exists()

    def test_jobs_flag_parallel_output_matches_serial(self, tmp_path,
                                                      monkeypatch, capsys):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "a"))
        assert self.run_cli(*self.BASE, "--quick", *self.RUN) == 0
        serial = capsys.readouterr().out
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "b"))
        assert self.run_cli(*self.BASE, "--quick", "--jobs", "2",
                            *self.RUN) == 0
        parallel = capsys.readouterr().out

        def strip_timing(text):
            return [ln for ln in text.splitlines()
                    if not ln.startswith("[")]

        assert strip_timing(serial) == strip_timing(parallel)

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            self.run_cli("--jobs", "0", "fig2", "--apps", "ocean")
