#!/usr/bin/env python
"""Layering lint: no module may import from a layer above its own.

The package is a DAG of layers (see ``docs/INTERNALS.md``, "Runtime
pipeline"):

    foundation (core.config / core.metrics / core.resultcache)
      -> memory / network
        -> native (C replay kernel: build layer + ctypes driver)
          -> sim
            -> apps
              -> runtime
                -> sim.batch (batched lockstep replay over the runtime)
                  -> core (sweep machinery: executor, study, bench, ...)
                    -> service (the sweep daemon)
                      -> analysis
                        -> cli

``repro.sim.batch`` is the one sub-package ranked above its parent: its
planner speaks ``runtime.plan`` requests and its runner drives the
``runtime.session`` pipeline, so it sits between the runtime and the
sweep machinery that dispatches batches (longest-prefix matching keeps
the rest of ``repro.sim`` at the sim rank).

An import is *upward* — and a violation — when the imported module's
layer rank is greater than the importer's.  Ranks are assigned by the
longest dotted-prefix match against ``RANKS``, so the three foundation
modules inside ``repro.core`` rank below the rest of that package.

Every import statement counts, including deferred (function-body)
imports: deferring breaks Python's import-time cycles but not the
architecture — a lower layer reaching up is a violation wherever the
statement sits.

Usage::

    python tools/check_layering.py src

Exits 0 when clean, 1 with one ``importer (rank a) imports imported
(rank b)`` line per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: dotted-prefix -> layer rank; longest matching prefix wins.  Keep in
#: sync with the DAG in docs/INTERNALS.md.
RANKS: dict[str, int] = {
    "repro._version": 0,
    "repro.core.config": 0,
    "repro.core.metrics": 0,
    "repro.core.resultcache": 0,
    "repro.memory": 1,
    "repro.network": 1,
    "repro.native": 2,  # C replay kernel; sim.nativereplay sits above it
    "repro.sim": 3,
    "repro.apps": 4,
    "repro.runtime": 5,
    "repro.sim.batch": 6,  # batched replay: drives runtime sessions
    "repro.core": 7,
    "repro.service": 8,
    "repro.analysis": 9,
    "repro.cli": 10,
    "repro": 11,  # the package facade re-exports everything below it
}


def rank_of(module: str) -> int | None:
    """Layer rank of a dotted module name (None = not a repro module)."""
    best_len = -1
    best_rank = None
    for prefix, rank in RANKS.items():
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > best_len:
                best_len = len(prefix)
                best_rank = rank
    return best_rank


def module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of a source file under ``src_root``."""
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def resolve_relative(importer: str, is_package: bool, level: int,
                     target: str | None) -> str:
    """Absolute dotted name of a ``from ...X import Y`` statement."""
    parts = importer.split(".")
    # the package context: a module resolves relative to its parent
    # package, a package (__init__) relative to itself
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def imported_modules(tree: ast.AST, importer: str,
                     is_package: bool) -> list[str]:
    """Every repro-package module imported anywhere in ``tree``."""
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                out.append(resolve_relative(importer, is_package,
                                            node.level, node.module))
            elif node.module:
                out.append(node.module)
    return [m for m in out if rank_of(m) is not None]


def check(src_root: Path) -> list[str]:
    """All upward-import violations under ``src_root`` (empty = clean)."""
    violations = []
    for path in sorted(src_root.rglob("*.py")):
        importer = module_name(path, src_root)
        importer_rank = rank_of(importer)
        if importer_rank is None:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        is_package = path.name == "__init__.py"
        for imported in imported_modules(tree, importer, is_package):
            imported_rank = rank_of(imported)
            if imported_rank is not None and imported_rank > importer_rank:
                violations.append(
                    f"{importer} (rank {importer_rank}) imports "
                    f"{imported} (rank {imported_rank})")
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    src_root = Path(argv[0] if argv else "src")
    if not src_root.is_dir():
        print(f"check_layering: source root {src_root} not found",
              file=sys.stderr)
        return 2
    violations = check(src_root)
    if violations:
        print(f"{len(violations)} layering violation(s):", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"layering OK under {src_root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
